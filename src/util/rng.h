// Deterministic pseudo-random number generation utilities.
//
// Every stochastic component in the library (sparsifiers, generators, metric
// samplers, GNN initialization) takes an explicit Rng so that experiments are
// reproducible from a single seed and independent runs can be forked from a
// parent stream without correlation.
#ifndef SPARSIFY_UTIL_RNG_H_
#define SPARSIFY_UTIL_RNG_H_

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

namespace sparsify {

/// Deterministic random number generator used across the library.
///
/// Wraps a SplitMix64-seeded xoshiro-style 64-bit engine (std::mt19937_64)
/// with convenience samplers. Copyable; `Fork()` derives an independent
/// child stream, which is what sweep harnesses use to give each
/// (sparsifier, prune-rate, run) cell its own reproducible stream.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(Mix(seed)) {}

  static constexpr result_type min() {
    return std::mt19937_64::min();
  }
  static constexpr result_type max() {
    return std::mt19937_64::max();
  }
  result_type operator()() { return engine_(); }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextUint(uint64_t bound) {
    return std::uniform_int_distribution<uint64_t>(0, bound - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Standard normal sample.
  double NextGaussian() {
    return std::normal_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial with success probability `p`.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Geometric sample: number of failures before first success, parameter p.
  uint64_t NextGeometric(double p) {
    return std::geometric_distribution<uint64_t>(p)(engine_);
  }

  /// Derives an independent child stream. Consumes one draw from this stream.
  Rng Fork() { return Rng(engine_()); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextUint(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) without replacement.
  /// Uses Floyd's algorithm; O(k) expected time, order unspecified.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  static uint64_t Mix(uint64_t z) {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::mt19937_64 engine_;
};

}  // namespace sparsify

#endif  // SPARSIFY_UTIL_RNG_H_
