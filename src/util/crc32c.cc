#include "src/util/crc32c.h"

namespace sparsify {

namespace {

// 256-entry table for the reflected Castagnoli polynomial, built once at
// first use (constant-initialized would also work, but a runtime build
// keeps the table out of the binary image).
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0);
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32c(const void* data, size_t len) {
  static const Crc32cTable table;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    crc = table.entries[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace sparsify
