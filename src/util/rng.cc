#include "src/util/rng.h"

#include <unordered_set>

namespace sparsify {

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  if (k >= n) {
    std::vector<uint64_t> all(n);
    for (uint64_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  // Floyd's algorithm: for j in [n-k, n), pick t in [0, j]; insert t unless
  // already present, in which case insert j.
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(k * 2);
  std::vector<uint64_t> out;
  out.reserve(k);
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = NextUint(j + 1);
    if (chosen.contains(t)) t = j;
    chosen.insert(t);
    out.push_back(t);
  }
  return out;
}

}  // namespace sparsify
