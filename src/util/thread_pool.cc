#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "src/obs/counters.h"
#include "src/util/cancel.h"
#include "src/util/failpoint.h"

namespace sparsify {
namespace {

// Queue-wait latency (enqueue -> dequeue) across every pool in the
// process. A growing tail here means submission outruns the workers.
obs::Histogram& QueueWaitHistogram() {
  static obs::Histogram& h = obs::GetHistogram("pool.queue_wait_ns");
  return h;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  worker_stats_ = std::make_unique<WorkerStat[]>(num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() { Stop(StopMode::kDrain); }

void ThreadPool::Stop(StopMode mode) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopped_) return;
    shutdown_ = true;
    if (mode == StopMode::kAbandon) {
      // Abandoned tasks count as "done" for Wait()'s bookkeeping: they
      // will never run, so nothing should block on them. abandon_ also
      // makes submissions from still-running tasks drop silently.
      abandon_ = true;
      const size_t dropped = queue_.size();
      queue_.clear();
      in_flight_ -= dropped;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
  std::unique_lock<std::mutex> lock(mu_);
  stopped_ = true;
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopped_) {
      throw std::logic_error("ThreadPool::Submit after Stop");
    }
    if (abandon_) return;  // dropped, like the rest of the queue
    queue_.push_back({std::move(task), Timer::Now()});
    queue_high_water_ = std::max(queue_high_water_, queue_.size());
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::SubmitUrgent(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopped_) {
      throw std::logic_error("ThreadPool::SubmitUrgent after Stop");
    }
    if (abandon_) return;  // dropped, like the rest of the queue
    queue_.push_front({std::move(task), Timer::Now()});
    queue_high_water_ = std::max(queue_high_water_, queue_.size());
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  WorkerStat& stat = worker_stats_[worker_index];
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with nothing left to do
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    Timer::TimePoint start = Timer::Now();
    QueueWaitHistogram().Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(start -
                                                             task.enqueued)
            .count()));
    try {
      SPARSIFY_FAILPOINT("pool.task");
      task.fn();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    uint64_t busy_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Timer::Now() -
                                                             start)
            .count());
    stat.tasks.fetch_add(1, std::memory_order_relaxed);
    stat.busy_ns.fetch_add(busy_ns, std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPoolStats ThreadPool::Stats() const {
  ThreadPoolStats out;
  size_t n = workers_.size();
  out.worker_tasks.reserve(n);
  out.worker_busy_seconds.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t tasks = worker_stats_[i].tasks.load(std::memory_order_relaxed);
    uint64_t busy_ns =
        worker_stats_[i].busy_ns.load(std::memory_order_relaxed);
    out.tasks_executed += tasks;
    out.busy_seconds += static_cast<double>(busy_ns) * 1e-9;
    out.worker_tasks.push_back(tasks);
    out.worker_busy_seconds.push_back(static_cast<double>(busy_ns) * 1e-9);
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    out.queue_high_water = queue_high_water_;
  }
  return out;
}

void ThreadPool::ResetStats() {
  for (size_t i = 0; i < workers_.size(); ++i) {
    worker_stats_[i].tasks.store(0, std::memory_order_relaxed);
    worker_stats_[i].busy_ns.store(0, std::memory_order_relaxed);
  }
  std::unique_lock<std::mutex> lock(mu_);
  queue_high_water_ = 0;
}

void NestedParallelFor(ThreadPool* pool, size_t n,
                       const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->NumThreads() < 2 || n < 2) {
    for (size_t i = 0; i < n; ++i) {
      SPARSIFY_CHECK_CANCELLED();
      fn(i);
    }
    return;
  }

  // Helpers run on pool threads that do not inherit this thread's
  // ambient cancel token; capture it here and re-install it in each
  // helper so every claimed index polls the same token.
  const CancelToken* cancel_token = CurrentCancelToken();

  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    std::atomic<bool> failed{false};
    std::mutex mu;
    std::condition_variable done;
    std::exception_ptr error;
    size_t n = 0;
  };
  auto state = std::make_shared<State>();
  state->n = n;

  // Every index is claimed and counted even after a failure (fn is just
  // skipped), so `completed` always reaches n and the caller's wait below
  // terminates unconditionally.
  auto claim_loop = [&fn](const std::shared_ptr<State>& s) {
    for (;;) {
      size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->n) return;
      if (!s->failed.load(std::memory_order_relaxed)) {
        try {
          SPARSIFY_CHECK_CANCELLED();
          fn(i);
        } catch (...) {
          if (!s->failed.exchange(true, std::memory_order_relaxed)) {
            std::lock_guard<std::mutex> lock(s->mu);
            s->error = std::current_exception();
          }
        }
      }
      if (s->completed.fetch_add(1, std::memory_order_acq_rel) + 1 == s->n) {
        std::lock_guard<std::mutex> lock(s->mu);
        s->done.notify_all();
      }
    }
  };

  // Helpers jump the queue so the expensive task that spawned them is not
  // stalled behind ordinary work. `fn` lives on the caller's stack, which
  // outlives every claimed index: the caller blocks until completed == n,
  // and a helper starting afterwards exits before touching fn.
  size_t helpers =
      std::min(n, static_cast<size_t>(pool->NumThreads())) - 1;
  for (size_t h = 0; h < helpers; ++h) {
    pool->SubmitUrgent([state, claim_loop, cancel_token] {
      CancelScope cancel_scope(cancel_token);
      claim_loop(state);
    });
  }
  claim_loop(state);

  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&] {
    return state->completed.load(std::memory_order_acquire) == state->n;
  });
  if (state->error) std::rethrow_exception(state->error);
}

namespace {
thread_local ThreadPool* g_subtask_pool = nullptr;
}  // namespace

ThreadPool* CurrentSubtaskPool() { return g_subtask_pool; }

SubtaskPoolScope::SubtaskPoolScope(ThreadPool* pool)
    : previous_(g_subtask_pool) {
  g_subtask_pool = pool;
}

SubtaskPoolScope::~SubtaskPoolScope() { g_subtask_pool = previous_; }

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  auto cursor = std::make_shared<std::atomic<size_t>>(0);
  // Early abort: once any index throws, the other chompers stop pulling
  // new indices (at most one in-flight call each finishes), so the error
  // surfaces without draining the whole range first.
  auto failed = std::make_shared<std::atomic<bool>>(false);
  const CancelToken* cancel_token = CurrentCancelToken();
  size_t num_workers =
      std::min(n, static_cast<size_t>(pool.NumThreads()));
  for (size_t w = 0; w < num_workers; ++w) {
    pool.Submit([cursor, failed, n, &fn, cancel_token] {
      CancelScope cancel_scope(cancel_token);
      for (;;) {
        if (failed->load(std::memory_order_relaxed)) return;
        size_t i = cursor->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          SPARSIFY_CHECK_CANCELLED();
          fn(i);
        } catch (...) {
          failed->store(true, std::memory_order_relaxed);
          throw;  // recorded as the pool's first error, rethrown by Wait
        }
      }
    });
  }
  pool.Wait();
}

}  // namespace sparsify
