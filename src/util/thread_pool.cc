#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace sparsify {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::SubmitUrgent(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_front(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with nothing left to do
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  auto cursor = std::make_shared<std::atomic<size_t>>(0);
  // Early abort: once any index throws, the other chompers stop pulling
  // new indices (at most one in-flight call each finishes), so the error
  // surfaces without draining the whole range first.
  auto failed = std::make_shared<std::atomic<bool>>(false);
  size_t num_workers =
      std::min(n, static_cast<size_t>(pool.NumThreads()));
  for (size_t w = 0; w < num_workers; ++w) {
    pool.Submit([cursor, failed, n, &fn] {
      for (;;) {
        if (failed->load(std::memory_order_relaxed)) return;
        size_t i = cursor->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          failed->store(true, std::memory_order_relaxed);
          throw;  // recorded as the pool's first error, rethrown by Wait
        }
      }
    });
  }
  pool.Wait();
}

}  // namespace sparsify
