#include "src/util/failpoint.h"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "src/obs/counters.h"
#include "src/util/cancel.h"

namespace sparsify::fail {

namespace {

// SplitMix64: the library's dependency-free seed mixer (same finalizer
// the engine uses for its seed derivations, but over a PRIVATE per-site
// state — failpoints must never consume engine RNG).
uint64_t SplitMix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct SiteState {
  Policy policy;
  uint64_t hits = 0;
  uint64_t fired = 0;
  uint64_t rng_state = 0;  // probability stream: SplitMix64 counter mode
};

struct Registry {
  std::mutex mu;
  std::map<std::string, SiteState> sites;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();
  return *r;
}

// Decision computed under the registry lock; the action (sleep, throw,
// abort) runs outside it so a delaying or throwing site never wedges
// other sites.
struct Decision {
  bool fire = false;
  Action action = Action::kThrow;
  uint64_t delay_ms = 0;
  std::string site;  // the name that matched (for the error message)
};

Decision DecideLocked(const std::string& name, SiteState& state) {
  Decision d;
  ++state.hits;
  const Policy& p = state.policy;
  if (p.nth > 0) {
    d.fire = state.hits == p.nth;
  } else if (p.probability >= 0.0) {
    state.rng_state = SplitMix(state.rng_state + 0x9e3779b97f4a7c15ULL);
    // 53-bit uniform in [0,1), the standard double construction.
    double u = static_cast<double>(state.rng_state >> 11) * 0x1.0p-53;
    d.fire = u < p.probability;
  } else {
    d.fire = true;
  }
  if (d.fire) {
    ++state.fired;
    d.action = p.action;
    d.delay_ms = p.delay_ms;
    d.site = name;
  }
  return d;
}

[[noreturn]] void ThrowInjected(const Decision& d, bool transient) {
  std::string what = "injected fault at failpoint '" + d.site + "'";
  if (transient) throw TransientError(what + " (transient)");
  throw InjectedFault(what);
}

void Act(const Decision& d) {
  static obs::Counter& fired = obs::GetCounter("fail.fired");
  fired.Add();
  switch (d.action) {
    case Action::kThrow:
      ThrowInjected(d, /*transient=*/false);
    case Action::kThrowTransient:
      ThrowInjected(d, /*transient=*/true);
    case Action::kAbort:
      std::abort();
    case Action::kKill:
#if defined(__unix__) || defined(__APPLE__)
      std::raise(SIGKILL);
      std::abort();  // unreachable; SIGKILL cannot be handled
#else
      std::abort();  // closest crash off-POSIX
#endif
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(d.delay_ms));
      return;
    case Action::kHang:
      // Block until the ambient cancel token trips (the cancellation
      // then propagates as its typed exception — exactly what a wedged
      // unit looks like to the deadline/watchdog machinery) or every
      // failpoint is disarmed (then continue as if nothing happened).
      while (internal::AnyArmed()) {
        const CancelToken* token = CurrentCancelToken();
        if (token != nullptr) token->ThrowIfCancelled();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return;
  }
}

Policy ParsePolicy(const std::string& spec_entry, const std::string& text) {
  // text = action[@trigger]; spec_entry only for error messages.
  Policy policy;
  std::string action = text;
  std::string trigger;
  size_t at = text.find('@');
  if (at != std::string::npos) {
    action = text.substr(0, at);
    trigger = text.substr(at + 1);
    if (trigger.empty()) {
      throw std::invalid_argument("failpoint spec: empty trigger in '" +
                                  spec_entry + "'");
    }
  }
  if (action == "throw") {
    policy.action = Action::kThrow;
  } else if (action == "throw-transient") {
    policy.action = Action::kThrowTransient;
  } else if (action == "abort") {
    policy.action = Action::kAbort;
  } else if (action == "kill") {
    policy.action = Action::kKill;
  } else if (action == "hang") {
    policy.action = Action::kHang;
  } else if (action.rfind("delay:", 0) == 0) {
    policy.action = Action::kDelay;
    char* end = nullptr;
    const std::string ms = action.substr(6);
    policy.delay_ms = std::strtoull(ms.c_str(), &end, 10);
    if (ms.empty() || end != ms.c_str() + ms.size()) {
      throw std::invalid_argument("failpoint spec: bad delay in '" +
                                  spec_entry + "'");
    }
  } else {
    throw std::invalid_argument("failpoint spec: unknown action in '" +
                                spec_entry + "'");
  }
  if (!trigger.empty()) {
    if (trigger[0] == 'p') {
      std::string prob = trigger.substr(1);
      size_t slash = prob.find('/');
      if (slash != std::string::npos) {
        const std::string seed = prob.substr(slash + 1);
        char* end = nullptr;
        policy.seed = std::strtoull(seed.c_str(), &end, 10);
        if (seed.empty() || end != seed.c_str() + seed.size()) {
          throw std::invalid_argument("failpoint spec: bad seed in '" +
                                      spec_entry + "'");
        }
        prob = prob.substr(0, slash);
      }
      char* end = nullptr;
      policy.probability = std::strtod(prob.c_str(), &end);
      if (prob.empty() || end != prob.c_str() + prob.size() ||
          policy.probability < 0.0 || policy.probability > 1.0) {
        throw std::invalid_argument("failpoint spec: bad probability in '" +
                                    spec_entry + "'");
      }
    } else {
      char* end = nullptr;
      policy.nth = std::strtoull(trigger.c_str(), &end, 10);
      if (end != trigger.c_str() + trigger.size() || policy.nth == 0) {
        throw std::invalid_argument("failpoint spec: bad trigger in '" +
                                    spec_entry + "'");
      }
    }
  }
  return policy;
}

}  // namespace

namespace internal {

std::atomic<int> g_armed{0};

void Evaluate(const char* site, const char* scope) {
  Registry& reg = GetRegistry();
  Decision d;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    // Scoped name first ("engine.metric_unit/degree"), bare site second.
    if (scope != nullptr) {
      std::string scoped = std::string(site) + '/' + scope;
      auto it = reg.sites.find(scoped);
      if (it != reg.sites.end()) {
        d = DecideLocked(scoped, it->second);
        if (d.fire) {
          // Act outside the lock.
        } else {
          return;
        }
      }
    }
    if (!d.fire) {
      auto it = reg.sites.find(site);
      if (it == reg.sites.end()) return;
      d = DecideLocked(site, it->second);
      if (!d.fire) return;
    }
  }
  Act(d);
}

}  // namespace internal

void Arm(const std::string& site, const Policy& policy) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto [it, inserted] = reg.sites.try_emplace(site);
  it->second = SiteState{};
  it->second.policy = policy;
  it->second.rng_state = SplitMix(policy.seed ^ 0x6a09e667f3bcc909ULL);
  if (inserted) {
    internal::g_armed.fetch_add(1, std::memory_order_relaxed);
  }
}

void Disarm(const std::string& site) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (reg.sites.erase(site) > 0) {
    internal::g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  internal::g_armed.fetch_sub(static_cast<int>(reg.sites.size()),
                              std::memory_order_relaxed);
  reg.sites.clear();
}

int ArmFromSpec(const std::string& spec) {
  int armed = 0;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    std::string entry = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("failpoint spec: expected site=action in '" +
                                  entry + "'");
    }
    Arm(entry.substr(0, eq), ParsePolicy(entry, entry.substr(eq + 1)));
    ++armed;
  }
  return armed;
}

int ArmFromEnv() {
  const char* env = std::getenv("SPARSIFY_FAILPOINTS");
  if (env == nullptr || *env == '\0') return 0;
  return ArmFromSpec(env);
}

uint64_t HitCount(const std::string& site) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.hits;
}

uint64_t FiredCount(const std::string& site) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.fired;
}

}  // namespace sparsify::fail
