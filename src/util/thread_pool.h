// Fixed-size worker-thread pool with a ParallelFor helper.
//
// The pool is the only threading primitive in the library: everything
// parallel (the batch sparsification engine, future metric parallelism)
// funnels through it so thread counts are controlled in one place.
// Determinism is the caller's job — work items must not depend on
// execution order (the batch engine derives every RNG stream from the
// task index, never from the worker).
#ifndef SPARSIFY_UTIL_THREAD_POOL_H_
#define SPARSIFY_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sparsify {

/// A fixed-size pool of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// `num_threads` <= 0 selects std::thread::hardware_concurrency()
  /// (minimum 1).
  explicit ThreadPool(int num_threads = 0);

  /// Drains remaining tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int NumThreads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task at the back of the queue. Tasks MAY submit further
  /// tasks (Wait's completion tracking counts queued + executing, and the
  /// submitter is still executing while it enqueues), but must never call
  /// Wait themselves — that deadlocks the worker.
  void Submit(std::function<void()> task);

  /// Enqueues a task at the FRONT of the queue: it runs before anything
  /// already queued. The batch engine uses this to drain a scored group's
  /// near-free mask tasks before further expensive scoring tasks start,
  /// which bounds how many groups' score states are alive at once.
  void SubmitUrgent(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw,
  /// rethrows the first exception (the rest are dropped).
  void Wait();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently executing
  std::exception_ptr first_error_;
  bool shutdown_ = false;
};

/// Runs fn(i) for every i in [0, n) on `pool`, blocking until all complete.
/// Work is distributed dynamically (one shared atomic cursor), so uneven
/// per-index cost balances automatically. Exceptions from fn propagate,
/// and abort the loop early: once an index throws, workers stop pulling
/// new indices (remaining indices are skipped).
/// Concurrent ParallelFor calls on the same pool are not supported (Wait
/// tracks completion pool-globally); callers must serialize — see
/// BatchRunner::Run.
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace sparsify

#endif  // SPARSIFY_UTIL_THREAD_POOL_H_
