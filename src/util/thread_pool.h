// Fixed-size worker-thread pool with a ParallelFor helper.
//
// The pool is the only threading primitive in the library: everything
// parallel (the batch sparsification engine, future metric parallelism)
// funnels through it so thread counts are controlled in one place.
// Determinism is the caller's job — work items must not depend on
// execution order (the batch engine derives every RNG stream from the
// task index, never from the worker).
#ifndef SPARSIFY_UTIL_THREAD_POOL_H_
#define SPARSIFY_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/timer.h"

namespace sparsify {

/// Always-on pool accounting (two clock reads per task — cheap against
/// any task worth submitting to a pool). busy_seconds is summed across
/// workers, so utilization over an interval is
/// busy_seconds / (wall x NumThreads()); idle is the complement.
struct ThreadPoolStats {
  uint64_t tasks_executed = 0;
  double busy_seconds = 0;
  size_t queue_high_water = 0;  // deepest the queue has been
  std::vector<uint64_t> worker_tasks;
  std::vector<double> worker_busy_seconds;
};

/// A fixed-size pool of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// `num_threads` <= 0 selects std::thread::hardware_concurrency()
  /// (minimum 1).
  explicit ThreadPool(int num_threads = 0);

  /// Equivalent to Stop(StopMode::kDrain) if not already stopped.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// How Stop treats tasks still sitting in the queue.
  enum class StopMode {
    kDrain,    // run everything already queued, then join
    kAbandon,  // drop queued tasks unrun; join after in-progress finish
  };

  /// Shuts the pool down and joins every worker. With kAbandon, tasks
  /// still queued are dropped (they never run — a cancelled sweep must
  /// not execute a backlog it no longer wants) and any Wait()er is
  /// released as if they had completed. In both modes, once Stop
  /// returns no task is running or will ever run; Submit afterwards
  /// throws std::logic_error. Idempotent; must not be called from a
  /// pool task.
  void Stop(StopMode mode);

  int NumThreads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task at the back of the queue. Tasks MAY submit further
  /// tasks (Wait's completion tracking counts queued + executing, and the
  /// submitter is still executing while it enqueues), but must never call
  /// Wait themselves — that deadlocks the worker.
  void Submit(std::function<void()> task);

  /// Enqueues a task at the FRONT of the queue: it runs before anything
  /// already queued. The batch engine uses this to drain a scored group's
  /// near-free mask tasks before further expensive scoring tasks start,
  /// which bounds how many groups' score states are alive at once.
  void SubmitUrgent(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw,
  /// rethrows the first exception (the rest are dropped).
  void Wait();

  /// Merged view of the per-worker counters plus the queue high-water
  /// mark. Safe to call concurrently with running tasks (values are a
  /// consistent-enough snapshot: relaxed per-worker atomics).
  ThreadPoolStats Stats() const;

  /// Zeroes the per-worker counters and the queue high-water mark, so a
  /// profile run measures only its own interval.
  void ResetStats();

 private:
  // Per-worker accounting lives on its own cache line so the hot path
  // (two relaxed stores per task) never bounces lines between workers.
  struct alignas(64) WorkerStat {
    std::atomic<uint64_t> tasks{0};
    std::atomic<uint64_t> busy_ns{0};
  };

  struct QueuedTask {
    std::function<void()> fn;
    Timer::TimePoint enqueued;  // for the pool.queue_wait_ns histogram
  };

  void WorkerLoop(size_t worker_index);

  std::vector<std::thread> workers_;
  std::unique_ptr<WorkerStat[]> worker_stats_;
  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<QueuedTask> queue_;
  size_t in_flight_ = 0;          // queued + currently executing
  size_t queue_high_water_ = 0;   // under mu_
  std::exception_ptr first_error_;
  bool shutdown_ = false;
  bool abandon_ = false;  // Stop(kAbandon): drop queued + new submissions
  bool stopped_ = false;  // Stop() ran to completion (workers joined)
};

/// Runs fn(i) for every i in [0, n) on `pool`, blocking until all complete.
/// Work is distributed dynamically (one shared atomic cursor), so uneven
/// per-index cost balances automatically. Exceptions from fn propagate,
/// and abort the loop early: once an index throws, workers stop pulling
/// new indices (remaining indices are skipped).
/// Concurrent ParallelFor calls on the same pool are not supported (Wait
/// tracks completion pool-globally); callers must serialize — see
/// BatchRunner::Run.
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn);

/// Parallel-for that is safe to call from INSIDE a pool task (which must
/// never call Wait — that deadlocks the worker). The calling thread claims
/// indices from a shared cursor alongside up to NumThreads()-1 helper
/// tasks pushed to the front of the queue; because indices are only ever
/// claimed by running threads, by the time the caller's own claim loop
/// drains the cursor every remaining index is already executing on some
/// other worker, so the final wait never depends on a queued task and
/// cannot deadlock — even when every worker is nested-waiting at once.
/// Helper tasks that start late simply find the cursor exhausted and exit.
///
/// Determinism is the caller's job, exactly as for the batch engine: fn
/// must be pure per index (write disjoint slots, fold afterwards in index
/// order) so results do not depend on which thread claims which index.
/// `pool` may be null (or single-threaded, or n < 2): the loop runs
/// serially on the calling thread with identical results. The first
/// exception thrown by any index is rethrown on the caller; remaining
/// unclaimed indices are skipped.
void NestedParallelFor(ThreadPool* pool, size_t n,
                       const std::function<void(size_t)>& fn);

/// Ambient pool for intra-task fan-out. The batch engine points this at
/// its own pool for the duration of each metric evaluation, so sampled
/// metrics (BFS batches, Brandes pivots) can fan their independent
/// per-source work out as NestedParallelFor subtasks without threading a
/// pool through every metric signature. Null outside engine tasks — and
/// then NestedParallelFor degrades to the serial loop, bit-identically.
ThreadPool* CurrentSubtaskPool();

/// RAII setter for CurrentSubtaskPool (thread-local; restores the previous
/// value, so nested scopes compose).
class SubtaskPoolScope {
 public:
  explicit SubtaskPoolScope(ThreadPool* pool);
  ~SubtaskPoolScope();

  SubtaskPoolScope(const SubtaskPoolScope&) = delete;
  SubtaskPoolScope& operator=(const SubtaskPoolScope&) = delete;

 private:
  ThreadPool* previous_;
};

}  // namespace sparsify

#endif  // SPARSIFY_UTIL_THREAD_POOL_H_
