#include "src/util/lease.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>

#include "src/util/errors.h"
#include "src/util/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <unistd.h>
#define SPARSIFY_LEASE_HAS_POSIX 1
#endif

namespace sparsify::lease {

namespace fs = std::filesystem;

namespace {

long OwnPid() {
#ifdef SPARSIFY_LEASE_HAS_POSIX
  return static_cast<long>(::getpid());
#else
  return 0;
#endif
}

// Pulls the numeric value following `"key":` out of a one-line JSON
// lease. Good enough because WriteLease controls the exact shape.
bool FindNumber(const std::string& line, const std::string& key,
                double* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t p = line.find(needle);
  if (p == std::string::npos) return false;
  char* end = nullptr;
  const char* start = line.c_str() + p + needle.size();
  *out = std::strtod(start, &end);
  return end != start;
}

bool FindString(const std::string& line, const std::string& key,
                std::string* out) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t p = line.find(needle);
  if (p == std::string::npos) return false;
  const size_t start = p + needle.size();
  const size_t close = line.find('"', start);
  if (close == std::string::npos) return false;
  *out = line.substr(start, close - start);
  return true;
}

}  // namespace

double TtlFromEnv(double fallback) {
  const char* env = std::getenv("SPARSIFY_LEASE_TTL");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  if (end == env || *end != '\0' || v <= 0) {
    throw std::invalid_argument(
        std::string("SPARSIFY_LEASE_TTL: expected seconds > 0, got '") +
        env + "'");
  }
  return v;
}

std::string NewWriterId() {
  // pid alone is not enough: a restarted worker may reuse its pid, and
  // one process can open several stores. The nonce disambiguates both.
  static std::atomic<uint64_t> counter{0};
  std::random_device rd;
  const uint64_t nonce =
      (static_cast<uint64_t>(rd()) << 16) ^ counter.fetch_add(1);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "w%ldx%016llx", OwnPid(),
                static_cast<unsigned long long>(nonce));
  return buf;
}

std::string LeasePathFor(const std::string& dir, const std::string& writer) {
  return (fs::path(dir) / ("lease." + writer + ".json")).string();
}

std::vector<LeaseInfo> ListLeases(const std::string& dir) {
  std::vector<LeaseInfo> leases;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("lease.", 0) != 0) continue;
    if (name.size() < 12 || name.compare(name.size() - 5, 5, ".json") != 0) {
      continue;
    }
    LeaseInfo info;
    info.writer = name.substr(6, name.size() - 11);
    info.path = entry.path().string();
    std::ifstream in(entry.path(), std::ios::binary);
    std::string line;
    if (in && std::getline(in, line)) {
      double pid = 0, heartbeat = 0, ttl = 0, owns_base = 0;
      std::string writer;
      if (FindString(line, "writer", &writer) && writer == info.writer &&
          FindNumber(line, "pid", &pid) &&
          FindNumber(line, "heartbeat", &heartbeat) &&
          FindNumber(line, "ttl", &ttl)) {
        info.pid = static_cast<long>(pid);
        info.heartbeat = static_cast<uint64_t>(heartbeat);
        info.ttl_seconds = ttl > 0 ? ttl : 30;
        if (FindNumber(line, "owns_base", &owns_base)) {
          info.owns_base = owns_base != 0;
        }
      }
      // A torn or mismatched lease file keeps pid 0: provably not live,
      // so the next acquirer reaps it.
    }
    leases.push_back(std::move(info));
  }
  return leases;
}

void WriteLease(const std::string& dir, const LeaseInfo& info) {
  SPARSIFY_FAILPOINT("store.lease.renew");
  const std::string path = LeasePathFor(dir, info.writer);
  const std::string tmp = path + ".tmp";
  std::ostringstream line;
  line << "{\"writer\":\"" << info.writer << "\",\"pid\":" << info.pid
       << ",\"heartbeat\":" << info.heartbeat << ",\"ttl\":";
  char ttl[32];
  std::snprintf(ttl, sizeof(ttl), "%.17g", info.ttl_seconds);
  line << ttl << ",\"owns_base\":" << (info.owns_base ? 1 : 0) << "}\n";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("lease: cannot open " + tmp);
    out << line.str();
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      throw IoError("lease: write failure on " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw IoError("lease: cannot rename " + tmp + " to " + path);
  }
}

void RemoveLease(const std::string& dir, const std::string& writer) {
  std::error_code ec;
  fs::remove(LeasePathFor(dir, writer), ec);
  fs::remove(LeasePathFor(dir, writer) + ".tmp", ec);
}

LeaseDirLock::LeaseDirLock(const std::string& dir) {
#ifdef SPARSIFY_LEASE_HAS_POSIX
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string lock_path = (fs::path(dir) / "leases.lock").string();
  fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw IoError("lease: cannot open lock file " + lock_path);
  }
  if (::flock(fd_, LOCK_EX) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw IoError("lease: flock failed on " + lock_path);
  }
#else
  (void)dir;
#endif
}

LeaseDirLock::~LeaseDirLock() {
#ifdef SPARSIFY_LEASE_HAS_POSIX
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
#endif
}

bool LivenessProber::Alive(const LeaseInfo& info) {
  if (info.pid <= 0) return false;  // torn/unreadable lease: not live
#ifdef SPARSIFY_LEASE_HAS_POSIX
  // Same-host fast path: a dead pid is stale immediately. ESRCH is the
  // only "definitely gone" answer; EPERM means alive-but-not-ours.
  if (::kill(static_cast<pid_t>(info.pid), 0) != 0 && errno == ESRCH) {
    return false;
  }
#endif
  // Wedged-process / foreign-host path: the counter must advance within
  // its TTL as measured on OUR steady clock. First sighting starts the
  // clock (optimistically alive).
  const auto now = std::chrono::steady_clock::now();
  auto [it, inserted] = seen_.try_emplace(info.writer);
  if (inserted || it->second.heartbeat != info.heartbeat) {
    it->second.heartbeat = info.heartbeat;
    it->second.changed_at = now;
    return true;
  }
  const double idle =
      std::chrono::duration<double>(now - it->second.changed_at).count();
  return idle <= info.ttl_seconds;
}

}  // namespace sparsify::lease
