#include "src/util/cancel.h"

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "src/obs/counters.h"
#include "src/util/errors.h"
#include "src/util/timer.h"

namespace sparsify {

void CancelToken::SetDeadlineAfter(double seconds) {
  SetDeadline(Timer::NowNanos() +
              static_cast<int64_t>(seconds * 1e9));
}

bool CancelToken::Cancelled() const {
  if (state_.load(std::memory_order_relaxed) != 0) return true;
  const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline != 0 && Timer::NowNanos() >= deadline) {
    // Latch so subsequent checks skip the clock read. If a concurrent
    // Cancel() won the race, its reason stands — first cause wins.
    uint8_t expected = 0;
    state_.compare_exchange_strong(
        expected, static_cast<uint8_t>(Reason::kDeadline),
        std::memory_order_relaxed);
    return true;
  }
  return parent_ != nullptr && parent_->Cancelled();
}

CancelToken::Reason CancelToken::EffectiveReason() const {
  const Reason own = reason();
  if (own != Reason::kNone) return own;
  return parent_ != nullptr ? parent_->EffectiveReason() : Reason::kNone;
}

void CancelToken::ThrowIfCancelled() const {
  if (!Cancelled()) return;
  if (EffectiveReason() == Reason::kDeadline) {
    throw DeadlineExceededError("deadline exceeded");
  }
  throw CancelledError("operation cancelled");
}

namespace cancel_internal {

std::atomic<int> g_armed{0};

namespace {
thread_local const CancelToken* g_current_token = nullptr;
}  // namespace

void CheckCurrent() {
  const CancelToken* token = g_current_token;
  if (token != nullptr) token->ThrowIfCancelled();
}

}  // namespace cancel_internal

const CancelToken* CurrentCancelToken() {
  return cancel_internal::g_current_token;
}

CancelScope::CancelScope(const CancelToken* token)
    : previous_(cancel_internal::g_current_token),
      armed_(token != nullptr) {
  if (!armed_) return;  // null scope: ambient token unchanged, no arming
  cancel_internal::g_current_token = token;
  cancel_internal::g_armed.fetch_add(1, std::memory_order_relaxed);
}

CancelScope::~CancelScope() {
  if (!armed_) return;
  cancel_internal::g_current_token = previous_;
  cancel_internal::g_armed.fetch_sub(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Activity registry
// ---------------------------------------------------------------------------

namespace {

// One slot per thread that has ever opened an ActivityScope. The slot's
// own mutex orders worker updates against watchdog sampling; critically,
// the watchdog cancels a stuck activity's token while holding the slot
// mutex, and the worker clears the slot (under the same mutex) before
// the token is destroyed, so the watchdog can never poke a dead token.
struct ActivitySlot {
  std::mutex mu;
  const char* stage = nullptr;  // null = idle
  std::string detail;
  const CancelToken* token = nullptr;
  int64_t start_ns = 0;
  // Watchdog bookkeeping: the start_ns it last dumped for, so each
  // stuck activity is reported once, not once per poll.
  int64_t dumped_start_ns = -1;
};

std::mutex g_registry_mu;
std::vector<ActivitySlot*>& Registry() {
  static std::vector<ActivitySlot*>* r = new std::vector<ActivitySlot*>();
  return *r;
}

ActivitySlot* LocalSlot() {
  thread_local ActivitySlot* slot = [] {
    auto* s = new ActivitySlot();  // leaked: watchdog may outlive thread
    std::lock_guard<std::mutex> lock(g_registry_mu);
    Registry().push_back(s);
    return s;
  }();
  return slot;
}

std::atomic<int64_t> g_dump_count{0};

}  // namespace

ActivityScope::ActivityScope(const char* stage, const std::string& detail,
                             const CancelToken* token) {
  ActivitySlot* slot = LocalSlot();
  slot_ = slot;
  std::lock_guard<std::mutex> lock(slot->mu);
  prev_stage_ = slot->stage;
  prev_detail_ = std::move(slot->detail);
  prev_token_ = slot->token;
  prev_start_ns_ = slot->start_ns;
  slot->stage = stage;
  slot->detail = detail;
  slot->token = token;
  slot->start_ns = Timer::NowNanos();
}

ActivityScope::~ActivityScope() {
  auto* slot = static_cast<ActivitySlot*>(slot_);
  std::lock_guard<std::mutex> lock(slot->mu);
  slot->stage = prev_stage_;
  slot->detail = std::move(prev_detail_);
  slot->token = prev_token_;
  slot->start_ns = prev_start_ns_;
}

std::vector<ActivitySnapshot> SnapshotActivities() {
  std::vector<ActivitySnapshot> out;
  const int64_t now = Timer::NowNanos();
  std::lock_guard<std::mutex> registry_lock(g_registry_mu);
  for (ActivitySlot* slot : Registry()) {
    std::lock_guard<std::mutex> lock(slot->mu);
    if (slot->stage == nullptr) continue;
    ActivitySnapshot snap;
    snap.stage = slot->stage;
    snap.detail = slot->detail;
    snap.age_seconds = static_cast<double>(now - slot->start_ns) * 1e-9;
    snap.cancellable = slot->token != nullptr;
    out.push_back(std::move(snap));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

namespace {

struct WatchdogState {
  std::mutex mu;
  std::condition_variable cv;
  bool running = false;
  bool stop_requested = false;
  std::thread thread;
  WatchdogOptions options;
};

WatchdogState& Watchdog() {
  static WatchdogState* s = new WatchdogState();
  return *s;
}

void DumpStuck(const WatchdogOptions& options, const char* stage,
               const std::string& detail, double age_seconds) {
  std::FILE* out = stderr;
  std::fprintf(out,
               "# sparsify watchdog: no progress for %.1fs in %s/%s "
               "(stall threshold %.1fs)\n",
               age_seconds, stage, detail.c_str(), options.stall_seconds);
  std::fprintf(out, "# in-flight activities:\n");
  for (const ActivitySnapshot& a : SnapshotActivities()) {
    std::fprintf(out, "#   %-14s %-24s age=%.1fs%s\n", a.stage.c_str(),
                 a.detail.c_str(), a.age_seconds,
                 a.cancellable ? "" : " (no token)");
  }
  std::fprintf(out, "# obs counters:\n");
  for (const auto& [name, value] : obs::SnapshotCounters()) {
    std::fprintf(out, "#   %-40s %lld\n", name.c_str(),
                 static_cast<long long>(value));
  }
  for (const auto& [name, snap] : obs::SnapshotHistograms()) {
    std::fprintf(out, "#   %-40s count=%llu mean=%.3g max=%.3g\n",
                 name.c_str(), static_cast<unsigned long long>(snap.count),
                 snap.Mean(), static_cast<double>(snap.max));
  }
  if (options.extra_dump) options.extra_dump(out);
  std::fflush(out);
}

void WatchdogLoop(WatchdogOptions options) {
  double poll = options.poll_seconds;
  if (poll <= 0) {
    poll = options.stall_seconds / 4;
    if (poll < 0.05) poll = 0.05;
    if (poll > 5.0) poll = 5.0;
  }
  const auto poll_interval = std::chrono::duration<double>(poll);
  WatchdogState& state = Watchdog();
  const int64_t stall_ns =
      static_cast<int64_t>(options.stall_seconds * 1e9);

  std::unique_lock<std::mutex> wake_lock(state.mu);
  while (!state.stop_requested) {
    state.cv.wait_for(wake_lock, poll_interval);
    if (state.stop_requested) break;
    wake_lock.unlock();

    const int64_t now = Timer::NowNanos();
    // Snapshot the slot list, then inspect each under its own mutex.
    std::vector<ActivitySlot*> slots;
    {
      std::lock_guard<std::mutex> registry_lock(g_registry_mu);
      slots = Registry();
    }
    for (ActivitySlot* slot : slots) {
      const char* stage = nullptr;  // literal: outlives the lock
      std::string detail;
      double age_seconds = 0;
      int64_t start_ns = 0;
      {
        std::lock_guard<std::mutex> slot_lock(slot->mu);
        if (slot->stage == nullptr) continue;
        const int64_t age_ns = now - slot->start_ns;
        if (age_ns < stall_ns) continue;
        if (slot->dumped_start_ns == slot->start_ns) continue;  // reported
        slot->dumped_start_ns = slot->start_ns;
        stage = slot->stage;
        detail = slot->detail;
        age_seconds = static_cast<double>(age_ns) * 1e-9;
        start_ns = slot->start_ns;
      }
      // Dump OUTSIDE the slot lock: the dump snapshots every slot,
      // including this one (locking it again would self-deadlock).
      DumpStuck(options, stage, detail, age_seconds);
      g_dump_count.fetch_add(1, std::memory_order_relaxed);
      if (options.cancel_stuck) {
        std::lock_guard<std::mutex> slot_lock(slot->mu);
        // Re-check under the lock: the activity may have finished while
        // we dumped, and the token is only guaranteed alive while the
        // slot still points at the SAME activity (the owning thread
        // clears the slot, under this mutex, before destroying it).
        if (slot->start_ns == start_ns && slot->stage != nullptr &&
            slot->token != nullptr) {
          std::fprintf(stderr,
                       "# sparsify watchdog: cancelling stuck %s/%s\n",
                       slot->stage, slot->detail.c_str());
          std::fflush(stderr);
          slot->token->Cancel(CancelToken::Reason::kDeadline);
        }
      }
    }

    wake_lock.lock();
  }
}

}  // namespace

void StartWatchdog(const WatchdogOptions& options) {
  WatchdogState& state = Watchdog();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.running) return;
  state.running = true;
  state.stop_requested = false;
  state.options = options;
  state.thread = std::thread(WatchdogLoop, options);
}

void StopWatchdog() {
  WatchdogState& state = Watchdog();
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!state.running) return;
    state.stop_requested = true;
  }
  state.cv.notify_all();
  state.thread.join();
  std::lock_guard<std::mutex> lock(state.mu);
  state.running = false;
  state.stop_requested = false;
}

int64_t WatchdogDumpCount() {
  return g_dump_count.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Signals
// ---------------------------------------------------------------------------

namespace {

std::atomic<CancelToken*> g_signal_token{nullptr};
std::atomic<bool> g_signal_seen{false};
volatile sig_atomic_t g_signal_signo = 0;
struct sigaction g_prev_sigint;
struct sigaction g_prev_sigterm;
bool g_handlers_installed = false;

extern "C" void SignalCancelHandler(int signo) {
  // Second signal: the user means it — abort immediately with the
  // conventional 128+sig code. _exit is async-signal-safe.
  if (g_signal_seen.exchange(true, std::memory_order_relaxed)) {
    ::_exit(128 + signo);
  }
  g_signal_signo = signo;
  CancelToken* token = g_signal_token.load(std::memory_order_relaxed);
  if (token != nullptr) token->Cancel(CancelToken::Reason::kCancelled);
  static const char kMsg[] =
      "\n# sparsify: signal received, draining in-flight units "
      "(signal again to abort)\n";
  // write(2) is async-signal-safe; the result is deliberately ignored.
  ssize_t ignored = ::write(STDERR_FILENO, kMsg, sizeof(kMsg) - 1);
  (void)ignored;
}

}  // namespace

void InstallSignalCancel(CancelToken* token) {
  g_signal_token.store(token, std::memory_order_relaxed);
  g_signal_seen.store(false, std::memory_order_relaxed);
  g_signal_signo = 0;
  struct sigaction action;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;  // store writes keep going; workers poll
  action.sa_handler = SignalCancelHandler;
  ::sigaction(SIGINT, &action, &g_prev_sigint);
  ::sigaction(SIGTERM, &action, &g_prev_sigterm);
  g_handlers_installed = true;
}

void ClearSignalCancel() {
  if (g_handlers_installed) {
    ::sigaction(SIGINT, &g_prev_sigint, nullptr);
    ::sigaction(SIGTERM, &g_prev_sigterm, nullptr);
    g_handlers_installed = false;
  }
  g_signal_token.store(nullptr, std::memory_order_relaxed);
}

int SignalCancelSigno() { return g_signal_signo; }

}  // namespace sparsify
