// Cooperative writer leases for multi-process result stores.
//
// A lease is one small JSON file (`lease.<writer-id>.json`) beside the
// store log, holding the writer's pid, a monotonically increasing
// heartbeat counter, and its TTL. Writers renew the heartbeat by
// atomically rewriting the file (tmp + rename); readers judge liveness
// without any shared clock:
//
//   acquire ── heartbeat ──> live ── pid dies / counter stops ──> stale
//                                         │
//                                         └──> reaped (lease removed,
//                                              torn segment tail sealed)
//
// A writer is STALE when its pid is provably dead on this host
// (kill(pid,0) == ESRCH) or when its heartbeat counter has not advanced
// for longer than the TTL as observed by the prober's local steady
// clock (the wedged-process and cross-host case). Both checks are
// conservative: a live writer renews every ttl/4, so a counter that
// sits still for a full TTL means the writer cannot make progress.
//
// All lease-file mutation that must be mutually exclusive (acquisition,
// reaping a stale peer's files) happens under a short flock on a shared
// `leases.lock` sidecar; renewals and probes never take the flock.
#ifndef SPARSIFY_UTIL_LEASE_H_
#define SPARSIFY_UTIL_LEASE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sparsify::lease {

/// Parsed contents of one lease file.
struct LeaseInfo {
  std::string writer;       // writer id (filename-safe, no dots)
  long pid = 0;             // writer's process id on its host
  uint64_t heartbeat = 0;   // monotonic renewal counter
  double ttl_seconds = 30;  // staleness horizon the writer promised
  bool owns_base = false;   // this writer appends to the base log file
  std::string path;         // lease file path (filled by ListLeases)
};

/// Default lease TTL; `SPARSIFY_LEASE_TTL` (seconds, > 0) overrides it.
double TtlFromEnv(double fallback);

/// A freshly generated writer id: "w<pid>x<nonce>". Filename-safe and
/// dot-free so `log.<writer>.<n>.jsonl` splits unambiguously on dots.
std::string NewWriterId();

/// Lease file path for `writer` inside `dir`.
std::string LeasePathFor(const std::string& dir, const std::string& writer);

/// Parses every `lease.*.json` in `dir` (missing dir = none). Unreadable
/// or torn lease files are returned with pid 0 — provably-not-live, so
/// reapable.
std::vector<LeaseInfo> ListLeases(const std::string& dir);

/// Atomically writes `info`'s lease file (tmp + rename). Fires failpoint
/// "store.lease.renew". Throws IoError on filesystem failure.
void WriteLease(const std::string& dir, const LeaseInfo& info);

/// Removes `writer`'s lease file, ignoring errors (release is
/// best-effort: a leaked lease file is reaped as stale by the next
/// acquirer).
void RemoveLease(const std::string& dir, const std::string& writer);

/// RAII guard for the shared `leases.lock` flock in `dir`. Blocks until
/// acquired (acquisition sections are tiny). No-op on platforms without
/// flock.
class LeaseDirLock {
 public:
  explicit LeaseDirLock(const std::string& dir);
  ~LeaseDirLock();
  LeaseDirLock(const LeaseDirLock&) = delete;
  LeaseDirLock& operator=(const LeaseDirLock&) = delete;

 private:
  int fd_ = -1;
};

/// Tracks heartbeat observations so staleness needs no cross-host clock:
/// a writer is stale once its counter has sat still for > ttl on OUR
/// steady clock. One prober keeps one of these for the store's lifetime.
class LivenessProber {
 public:
  /// True when `info`'s writer should be treated as alive. Dead pid
  /// (same host) => false immediately; otherwise false only after the
  /// heartbeat counter stays unchanged for longer than its TTL.
  bool Alive(const LeaseInfo& info);

 private:
  struct Observation {
    uint64_t heartbeat = 0;
    std::chrono::steady_clock::time_point changed_at;
  };
  std::map<std::string, Observation> seen_;
};

}  // namespace sparsify::lease

#endif  // SPARSIFY_UTIL_LEASE_H_
