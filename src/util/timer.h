// Wall-clock timing helper used by the benches, the evaluation harness,
// and the observability layer.
//
// This header is the library's single clock domain: Timer::Now() is the
// one place std::chrono::steady_clock is consulted, so trace spans
// (src/obs/trace.h), BatchRunStats wall-clock splits, ThreadPool busy
// accounting, and bench timings all measure on the same monotonic axis
// and their timestamps are directly comparable.
#ifndef SPARSIFY_UTIL_TIMER_H_
#define SPARSIFY_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace sparsify {

/// Monotonic wall-clock stopwatch. Starts on construction.
class Timer {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  /// The shared monotonic clock. Every timing in the library reads this.
  static TimePoint Now() { return Clock::now(); }

  /// Seconds between two time points (negative if b precedes a).
  static double SecondsBetween(TimePoint a, TimePoint b) {
    return std::chrono::duration<double>(b - a).count();
  }

  /// Nanoseconds since the (unspecified, boot-relative) steady_clock
  /// epoch. Only differences are meaningful; the trace exporter rebases
  /// onto the earliest event before writing timestamps out.
  static int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Now().time_since_epoch())
        .count();
  }

  Timer() : start_(Now()) {}

  /// Resets the start point to now.
  void Reset() { start_ = Now(); }

  /// Seconds elapsed since construction or last Reset().
  double Seconds() const { return SecondsBetween(start_, Now()); }

  /// Milliseconds elapsed since construction or last Reset().
  double Millis() const { return Seconds() * 1e3; }

  /// The start point (construction or last Reset()).
  TimePoint start() const { return start_; }

 private:
  TimePoint start_;
};

}  // namespace sparsify

#endif  // SPARSIFY_UTIL_TIMER_H_
