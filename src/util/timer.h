// Wall-clock timing helper used by the sparsification-time benchmark and the
// evaluation harness.
#ifndef SPARSIFY_UTIL_TIMER_H_
#define SPARSIFY_UTIL_TIMER_H_

#include <chrono>

namespace sparsify {

/// Monotonic wall-clock stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sparsify

#endif  // SPARSIFY_UTIL_TIMER_H_
