#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace sparsify {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  size_t mid = xs.size() / 2;
  if (xs.size() % 2 == 1) return xs[mid];
  return 0.5 * (xs[mid - 1] + xs[mid]);
}

double BhattacharyyaDistance(const std::vector<double>& p,
                             const std::vector<double>& q) {
  double sp = std::accumulate(p.begin(), p.end(), 0.0);
  double sq = std::accumulate(q.begin(), q.end(), 0.0);
  if (sp <= 0.0 || sq <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  double bc = 0.0;
  size_t n = std::min(p.size(), q.size());
  for (size_t i = 0; i < n; ++i) {
    if (p[i] > 0.0 && q[i] > 0.0) {
      bc += std::sqrt((p[i] / sp) * (q[i] / sq));
    }
  }
  if (bc <= 0.0) return std::numeric_limits<double>::infinity();
  // Numerical noise can push the coefficient slightly above 1.
  bc = std::min(bc, 1.0);
  return -std::log(bc);
}

void RunningStats::Add(double x) {
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::StdDev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

}  // namespace sparsify
