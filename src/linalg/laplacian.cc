#include "src/linalg/laplacian.h"

#include <cassert>

namespace sparsify {

void LaplacianMultiply(const Graph& g, const Vec& x, Vec* y) {
  assert(x.size() == g.NumVertices());
  y->assign(g.NumVertices(), 0.0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.CanonicalEdge(e);
    double w = ed.w;
    double diff = x[ed.u] - x[ed.v];
    (*y)[ed.u] += w * diff;
    (*y)[ed.v] -= w * diff;
  }
}

Vec WeightedDegrees(const Graph& g) {
  Vec deg(g.NumVertices(), 0.0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.CanonicalEdge(e);
    deg[ed.u] += ed.w;
    deg[ed.v] += ed.w;
  }
  return deg;
}

double QuadraticForm(const Graph& g, const Vec& x) {
  assert(x.size() == g.NumVertices());
  double q = 0.0;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.CanonicalEdge(e);
    double diff = x[ed.u] - x[ed.v];
    q += ed.w * diff * diff;
  }
  return q;
}

}  // namespace sparsify
