#include "src/linalg/cg.h"

#include <cassert>
#include <cmath>

#include "src/linalg/laplacian.h"
#include "src/util/cancel.h"

namespace sparsify {

CgResult SolveLaplacian(const Graph& g, const Vec& b, Vec* x, double tol,
                        int max_iters) {
  const size_t n = g.NumVertices();
  assert(b.size() == n);
  assert(x->size() == n);
  CgResult result;

  Vec deg = WeightedDegrees(g);
  // Jacobi preconditioner M^{-1} = 1/deg (1 for isolated vertices, whose
  // rows are zero; their solution entries stay at the initial value).
  Vec minv(n);
  for (size_t i = 0; i < n; ++i) minv[i] = deg[i] > 0.0 ? 1.0 / deg[i] : 1.0;

  Vec r(n), z(n), p(n), lp(n);
  LaplacianMultiply(g, *x, &lp);
  for (size_t i = 0; i < n; ++i) r[i] = b[i] - lp[i];
  double bnorm = Norm2(b);
  if (bnorm == 0.0) {
    x->assign(n, 0.0);
    result.converged = true;
    return result;
  }
  for (size_t i = 0; i < n; ++i) z[i] = minv[i] * r[i];
  p = z;
  double rz = Dot(r, z);
  for (int it = 0; it < max_iters; ++it) {
    // ER's CG solves dominate its PrepareScores cost; poll per iteration
    // (one matvec each) so a deadline lands within one iteration.
    SPARSIFY_CHECK_CANCELLED();
    result.iterations = it + 1;
    LaplacianMultiply(g, p, &lp);
    double plp = Dot(p, lp);
    if (plp <= 0.0) break;  // p in (numerical) kernel; converged as far as
                            // the consistent part goes.
    double alpha = rz / plp;
    Axpy(alpha, p, x);
    Axpy(-alpha, lp, &r);
    double rnorm = Norm2(r);
    result.residual_norm = rnorm;
    if (rnorm <= tol * bnorm) {
      result.converged = true;
      break;
    }
    for (size_t i = 0; i < n; ++i) z[i] = minv[i] * r[i];
    double rz_next = Dot(r, z);
    double beta = rz_next / rz;
    rz = rz_next;
    for (size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    // Deflate kernel drift occasionally.
    if ((it & 63) == 63) RemoveMean(x);
  }
  return result;
}

}  // namespace sparsify
