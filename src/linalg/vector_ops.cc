#include "src/linalg/vector_ops.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace sparsify {

double Dot(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm2(const Vec& a) { return std::sqrt(Dot(a, a)); }

void Axpy(double alpha, const Vec& x, Vec* y) {
  assert(x.size() == y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Scale(double alpha, Vec* x) {
  for (double& v : *x) v *= alpha;
}

void RemoveMean(Vec* x) {
  if (x->empty()) return;
  double mean = Sum(*x) / static_cast<double>(x->size());
  for (double& v : *x) v -= mean;
}

double Sum(const Vec& x) {
  return std::accumulate(x.begin(), x.end(), 0.0);
}

}  // namespace sparsify
