// Graph Laplacian operators.
//
// The Laplacian L = D - A of the (symmetrized) graph is applied matrix-free
// from the CSR adjacency; no explicit matrix is materialized. This serves
// the Laplacian quadratic-form metric (paper section 2.2.1) and the CG
// solves inside the Effective Resistance sparsifier (section 2.3.9).
#ifndef SPARSIFY_LINALG_LAPLACIAN_H_
#define SPARSIFY_LINALG_LAPLACIAN_H_

#include "src/graph/graph.h"
#include "src/linalg/vector_ops.h"

namespace sparsify {

/// y = L x where L is the Laplacian of `g`. For directed graphs the
/// symmetrized adjacency is implied (the paper only defines L for undirected
/// graphs); pass an undirected graph for exact semantics.
void LaplacianMultiply(const Graph& g, const Vec& x, Vec* y);

/// Weighted degree (sum of incident canonical edge weights) of every vertex.
Vec WeightedDegrees(const Graph& g);

/// The quadratic form x^T L x = sum_{(u,v) in E} w_uv (x_u - x_v)^2.
/// Always >= 0 for undirected graphs.
double QuadraticForm(const Graph& g, const Vec& x);

}  // namespace sparsify

#endif  // SPARSIFY_LINALG_LAPLACIAN_H_
