// Minimal dense-vector kernels used by the CG solver, spectral metrics, and
// centrality power iterations. Free functions over std::vector<double> keep
// call sites simple and avoid an expression-template dependency.
#ifndef SPARSIFY_LINALG_VECTOR_OPS_H_
#define SPARSIFY_LINALG_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace sparsify {

using Vec = std::vector<double>;

/// Dot product. Vectors must have equal size.
double Dot(const Vec& a, const Vec& b);

/// Euclidean norm.
double Norm2(const Vec& a);

/// y += alpha * x.
void Axpy(double alpha, const Vec& x, Vec* y);

/// x *= alpha.
void Scale(double alpha, Vec* x);

/// Subtracts the mean from every entry (projects out the all-ones direction,
/// used to keep CG iterates in the range of a graph Laplacian).
void RemoveMean(Vec* x);

/// Sum of entries.
double Sum(const Vec& x);

}  // namespace sparsify

#endif  // SPARSIFY_LINALG_VECTOR_OPS_H_
