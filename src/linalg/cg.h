// Jacobi-preconditioned conjugate gradient for graph Laplacian systems.
//
// The Laplacian is symmetric positive semi-definite with kernel spanned by
// the indicator vectors of connected components. We solve the consistent
// system L x = b for right-hand sides orthogonal to the kernel (every
// b = B^T W^{1/2} q produced by the Effective Resistance estimator is,
// because each edge contributes +w and -w to its two endpoints, which lie in
// the same component). Iterates are periodically deflated against the
// all-ones vector to suppress kernel drift from rounding.
#ifndef SPARSIFY_LINALG_CG_H_
#define SPARSIFY_LINALG_CG_H_

#include "src/graph/graph.h"
#include "src/linalg/vector_ops.h"

namespace sparsify {

/// Result of a CG solve.
struct CgResult {
  int iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
};

/// Solves L x = b to relative tolerance `tol` (on the residual norm) with at
/// most `max_iters` iterations. `x` is both the initial guess (pass zeros if
/// unknown) and the output. Degree-0 vertices are fixed at x = 0.
CgResult SolveLaplacian(const Graph& g, const Vec& b, Vec* x,
                        double tol = 1e-8, int max_iters = 2000);

}  // namespace sparsify

#endif  // SPARSIFY_LINALG_CG_H_
