// Connected components and the paper's graph-connectivity metrics
// (section 3.3.1): the source-destination pair unreachable ratio and the
// vertex isolated ratio.
#ifndef SPARSIFY_METRICS_COMPONENTS_H_
#define SPARSIFY_METRICS_COMPONENTS_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace sparsify {

/// Component labels in [0, num_components). For directed graphs these are
/// *weakly* connected components (edge direction ignored), matching how the
/// paper treats reachability for pair sampling.
struct ComponentResult {
  std::vector<NodeId> label;
  NodeId num_components = 0;
  std::vector<NodeId> sizes;  // indexed by label
};

ComponentResult ConnectedComponents(const Graph& g);

/// Fraction of ordered vertex pairs (u != v) with no undirected path between
/// them. Computed exactly from component sizes.
double UnreachableRatio(const Graph& g);

/// Fraction of vertices with no incident edges.
double IsolatedRatio(const Graph& g);

/// Samples `num_pairs` pairs that are connected in `original` and reports
/// the fraction that are NOT connected in `sparsified` (the increase the
/// paper bounds at 20% for the "adjusted" distance figures).
double SampledUnreachableIncrease(const Graph& original,
                                  const Graph& sparsified, int num_pairs,
                                  Rng& rng);

/// DIRECTED unreachable ratio: fraction of sampled ordered pairs (u, v)
/// with no directed path u -> v (BFS along out-edges). For undirected
/// graphs this converges to UnreachableRatio. Weak components overstate
/// directed reachability on web-like graphs, so directed datasets should
/// use this variant.
double SampledDirectedUnreachableRatio(const Graph& g, int num_pairs,
                                       Rng& rng);

}  // namespace sparsify

#endif  // SPARSIFY_METRICS_COMPONENTS_H_
