// Basic graph metrics (paper sections 2.2.1 and 3.3.1): degree-distribution
// similarity via the Bhattacharyya distance, and Laplacian quadratic-form
// similarity over random probe vectors.
#ifndef SPARSIFY_METRICS_BASIC_H_
#define SPARSIFY_METRICS_BASIC_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace sparsify {

/// Histogram of out-degrees with `bins` equal-width bins over
/// [0, max_degree]; `max_degree` is typically taken from the *original*
/// graph so that the original and sparsified histograms share bins.
std::vector<double> DegreeHistogram(const Graph& g, int bins,
                                    NodeId max_degree);

/// Bhattacharyya distance between the degree distributions of `original`
/// and `sparsified` using `bins` shared bins (paper uses 100). Lower is
/// better; 0 means identical distributions.
double DegreeDistributionDistance(const Graph& original,
                                  const Graph& sparsified, int bins = 100);

/// Mean ratio (x^T L_sparsified x) / (x^T L_original x) over `num_vectors`
/// random Gaussian probe vectors (paper uses 100). Closer to 1 is better.
/// Directed graphs are symmetrized first, as the paper's Laplacian is only
/// defined for undirected graphs.
double QuadraticFormSimilarity(const Graph& original, const Graph& sparsified,
                               int num_vectors, Rng& rng);

}  // namespace sparsify

#endif  // SPARSIFY_METRICS_BASIC_H_
