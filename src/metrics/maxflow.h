// Min-cut / max-flow metric (paper sections 2.2.5 and 3.3.4): Dinic's
// algorithm with edge weights as capacities, and a sampled s-t pair stretch
// evaluator comparing sparsified against original flow values.
#ifndef SPARSIFY_METRICS_MAXFLOW_H_
#define SPARSIFY_METRICS_MAXFLOW_H_

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace sparsify {

/// Maximum s-t flow. Undirected edges are modeled as a pair of arcs sharing
/// capacity in each direction (standard undirected flow). Returns 0 when s
/// and t are disconnected.
double MaxFlow(const Graph& g, NodeId s, NodeId t);

/// Result of a sampled flow comparison.
struct FlowStretchResult {
  double mean_ratio = 0.0;  // mean flow_sparsified / flow_original
  int pairs_evaluated = 0;
  double zero_flow_fraction = 0.0;  // pairs whose sparsified flow became 0
};

/// Samples up to `num_pairs` s-t pairs with positive flow in `original`
/// (pairs in different components are excluded per Table 1 note) and
/// reports the mean ratio of sparsified to original max-flow.
FlowStretchResult MaxFlowStretch(const Graph& original,
                                 const Graph& sparsified, int num_pairs,
                                 Rng& rng);

}  // namespace sparsify

#endif  // SPARSIFY_METRICS_MAXFLOW_H_
