#include "src/metrics/components.h"

#include "src/graph/traversal.h"
#include "src/graph/union_find.h"

namespace sparsify {

ComponentResult ConnectedComponents(const Graph& g) {
  UnionFind uf(g.NumVertices());
  for (const Edge& e : g.Edges()) uf.Union(e.u, e.v);
  ComponentResult result;
  result.label.assign(g.NumVertices(), kInvalidNode);
  std::vector<NodeId> root_to_label(g.NumVertices(), kInvalidNode);
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    NodeId root = static_cast<NodeId>(uf.Find(v));
    if (root_to_label[root] == kInvalidNode) {
      root_to_label[root] = result.num_components++;
      result.sizes.push_back(0);
    }
    result.label[v] = root_to_label[root];
    ++result.sizes[result.label[v]];
  }
  return result;
}

double UnreachableRatio(const Graph& g) {
  const double n = static_cast<double>(g.NumVertices());
  if (n < 2) return 0.0;
  ComponentResult cc = ConnectedComponents(g);
  double reachable = 0.0;
  for (NodeId size : cc.sizes) {
    reachable += static_cast<double>(size) * (size - 1.0);
  }
  return 1.0 - reachable / (n * (n - 1.0));
}

double IsolatedRatio(const Graph& g) {
  if (g.NumVertices() == 0) return 0.0;
  return static_cast<double>(g.CountIsolated()) /
         static_cast<double>(g.NumVertices());
}

double SampledDirectedUnreachableRatio(const Graph& g, int num_pairs,
                                       Rng& rng) {
  const NodeId n = g.NumVertices();
  if (n < 2 || num_pairs <= 0) return 0.0;
  // Group pairs by source: one BFS serves many destination probes. The
  // hybrid kernel's epoch stamps replace the old touched-list reset, and
  // reachability ignores weights exactly as the legacy hand-rolled BFS
  // did (hop counts, never Dijkstra).
  int num_sources = std::max(1, num_pairs / 32);
  int per_source = (num_pairs + num_sources - 1) / num_sources;
  TraversalScratch& scratch = LocalTraversalScratch();
  int total = 0, unreachable = 0;
  for (int s = 0; s < num_sources; ++s) {
    NodeId src = static_cast<NodeId>(rng.NextUint(n));
    BfsLevels(g, src, scratch);
    for (int i = 0; i < per_source; ++i) {
      NodeId dst = static_cast<NodeId>(rng.NextUint(n));
      if (dst == src) continue;
      ++total;
      if (!scratch.Reached(dst)) ++unreachable;
    }
  }
  return total > 0 ? static_cast<double>(unreachable) / total : 0.0;
}

double SampledUnreachableIncrease(const Graph& original,
                                  const Graph& sparsified, int num_pairs,
                                  Rng& rng) {
  ComponentResult orig = ConnectedComponents(original);
  ComponentResult spar = ConnectedComponents(sparsified);
  const NodeId n = original.NumVertices();
  if (n < 2 || num_pairs <= 0) return 0.0;
  int sampled = 0, broken = 0;
  int attempts = 0;
  const int max_attempts = num_pairs * 50;
  while (sampled < num_pairs && attempts++ < max_attempts) {
    NodeId u = static_cast<NodeId>(rng.NextUint(n));
    NodeId v = static_cast<NodeId>(rng.NextUint(n));
    if (u == v || orig.label[u] != orig.label[v]) continue;
    ++sampled;
    if (spar.label[u] != spar.label[v]) ++broken;
  }
  return sampled > 0 ? static_cast<double>(broken) / sampled : 0.0;
}

}  // namespace sparsify
