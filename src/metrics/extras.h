// Additional structural metrics beyond the paper's sixteen, exercising the
// framework's "extendable to future graph metrics" claim: degree
// assortativity, strongly connected components (directed), and the
// adjacency spectral radius.
#ifndef SPARSIFY_METRICS_EXTRAS_H_
#define SPARSIFY_METRICS_EXTRAS_H_

#include <vector>

#include "src/graph/graph.h"

namespace sparsify {

/// Pearson degree assortativity coefficient (Newman): correlation of the
/// degrees at the two endpoints of every edge, in [-1, 1]. Social networks
/// tend positive, technological networks negative. Returns 0 when the
/// degree variance at edge endpoints is zero (e.g. regular graphs).
double DegreeAssortativity(const Graph& g);

/// Strongly connected components of a directed graph (Tarjan, iterative).
/// For undirected graphs this equals ConnectedComponents.
struct SccResult {
  std::vector<NodeId> label;  // component id per vertex
  NodeId num_components = 0;
  std::vector<NodeId> sizes;
};
SccResult StronglyConnectedComponents(const Graph& g);

/// Largest-magnitude adjacency eigenvalue estimated by shifted power
/// iteration (Rayleigh quotient after `iters` steps). For undirected
/// graphs this is the spectral radius.
double SpectralRadius(const Graph& g, int iters = 200);

}  // namespace sparsify

#endif  // SPARSIFY_METRICS_EXTRAS_H_
