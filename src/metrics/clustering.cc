#include "src/metrics/clustering.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace sparsify {

std::vector<double> LocalClusteringCoefficients(const Graph& g) {
  Graph sym_holder;
  const Graph* ug = &g;
  if (g.IsDirected()) {
    sym_holder = g.Symmetrized();
    ug = &sym_holder;
  }
  const NodeId n = ug->NumVertices();
  std::vector<double> lcc(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    auto nbrs = ug->OutNeighborNodes(v);
    size_t deg = nbrs.size();
    if (deg < 2) continue;
    // Count edges among neighbors: for each neighbor u, count shared
    // neighbors of u and v (each triangle at v counted twice).
    size_t links2 = 0;
    for (NodeId u : nbrs) {
      links2 += SortedIntersectionSize(nbrs, ug->OutNeighborNodes(u));
    }
    lcc[v] = static_cast<double>(links2) /
             (static_cast<double>(deg) * (deg - 1));
  }
  return lcc;
}

double MeanClusteringCoefficient(const Graph& g) {
  std::vector<double> lcc = LocalClusteringCoefficients(g);
  if (lcc.empty()) return 0.0;
  double sum = 0.0;
  for (double c : lcc) sum += c;
  return sum / static_cast<double>(lcc.size());
}

uint64_t CountTriangles(const Graph& g) {
  Graph sym_holder;
  const Graph* ug = &g;
  if (g.IsDirected()) {
    sym_holder = g.Symmetrized();
    ug = &sym_holder;
  }
  // Each triangle {u,v,w} is counted once per edge with u < v via common
  // neighbors; dividing by 3 corrects the triple count.
  uint64_t count = 0;
  for (const Edge& e : ug->Edges()) {
    count += SortedIntersectionSize(ug->OutNeighborNodes(e.u),
                                    ug->OutNeighborNodes(e.v));
  }
  return count / 3;
}

double GlobalClusteringCoefficient(const Graph& g) {
  Graph sym_holder;
  const Graph* ug = &g;
  if (g.IsDirected()) {
    sym_holder = g.Symmetrized();
    ug = &sym_holder;
  }
  uint64_t triangles = CountTriangles(*ug);
  double triplets = 0.0;
  for (NodeId v = 0; v < ug->NumVertices(); ++v) {
    double d = static_cast<double>(ug->OutDegree(v));
    triplets += d * (d - 1.0) / 2.0;
  }
  if (triplets <= 0.0) return 0.0;
  return 3.0 * static_cast<double>(triangles) / triplets;
}

double ClusteringF1(const std::vector<int>& clusters,
                    const std::vector<int>& reference) {
  const size_t n = clusters.size();
  if (n == 0 || reference.size() != n) return 0.0;
  // a[i][j] = |C_i n R_j| as a sparse map keyed by (cluster, ref) pair.
  //
  // Note on fidelity: the paper's printed formula (section 2.2.4) sets
  // precision = sum_i max_j a_ij / sum_ij a_ij, but sum_ij a_ij = n always,
  // which collapses precision and recall into cluster purity and REWARDS
  // over-fragmentation — contradicting the paper's own Fig. 10, where the
  // fragmenting sparsifiers (G-Spar, SCAN) score WORST. We therefore use
  // the symmetric best-match form the figures imply:
  //   precision = sum_i max_j a_ij / n   (are clusters pure?)
  //   recall    = sum_j max_i a_ij / n   (are reference clusters intact?)
  // Identical clusterings still score 1; shattering now hurts recall.
  std::map<std::pair<int, int>, double> a;
  for (size_t v = 0; v < n; ++v) {
    a[{clusters[v], reference[v]}] += 1.0;
  }
  std::unordered_map<int, double> row_max, col_max;
  for (const auto& [key, count] : a) {
    row_max[key.first] = std::max(row_max[key.first], count);
    col_max[key.second] = std::max(col_max[key.second], count);
  }
  double sum_row_max = 0.0, sum_col_max = 0.0;
  for (const auto& [c, m] : row_max) sum_row_max += m;
  for (const auto& [r, m] : col_max) sum_col_max += m;
  double precision = sum_row_max / static_cast<double>(n);
  double recall = sum_col_max / static_cast<double>(n);
  if (precision + recall <= 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

}  // namespace sparsify
