// k-core decomposition and harmonic centrality — extension metrics for the
// framework's metric registry (structural robustness and a closeness
// variant that handles disconnected graphs natively).
#ifndef SPARSIFY_METRICS_KCORE_H_
#define SPARSIFY_METRICS_KCORE_H_

#include <vector>

#include "src/graph/graph.h"

namespace sparsify {

/// Core number of every vertex (the largest k such that the vertex belongs
/// to a subgraph of minimum degree k). Linear-time bucket peeling
/// (Batagelj-Zaversnik). Directed graphs use total (in+out) degree.
std::vector<NodeId> CoreNumbers(const Graph& g);

/// Largest core number in the graph (the degeneracy).
NodeId Degeneracy(const Graph& g);

/// Harmonic centrality: sum over u != v of 1 / d(v, u), with 1/inf = 0 —
/// well defined on disconnected graphs, unlike raw closeness.
std::vector<double> HarmonicCentrality(const Graph& g);

/// Brandes betweenness with Dijkstra shortest paths (weighted graphs).
/// Matches the unweighted version on unit weights.
std::vector<double> WeightedBetweennessCentrality(const Graph& g);

}  // namespace sparsify

#endif  // SPARSIFY_METRICS_KCORE_H_
