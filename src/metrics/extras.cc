#include "src/metrics/extras.h"

#include <algorithm>
#include <cmath>

#include "src/linalg/vector_ops.h"

namespace sparsify {

double DegreeAssortativity(const Graph& g) {
  // Pearson correlation over edge-endpoint degree pairs; undirected edges
  // contribute both orientations (standard Newman formulation).
  double n = 0.0, sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
  auto add = [&](double x, double y) {
    n += 1.0;
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  };
  for (const Edge& e : g.Edges()) {
    if (g.IsDirected()) {
      add(g.OutDegree(e.u), g.InDegree(e.v));
    } else {
      double du = g.OutDegree(e.u), dv = g.OutDegree(e.v);
      add(du, dv);
      add(dv, du);
    }
  }
  if (n == 0.0) return 0.0;
  double cov = sxy / n - (sx / n) * (sy / n);
  double vx = sxx / n - (sx / n) * (sx / n);
  double vy = syy / n - (sy / n) * (sy / n);
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

SccResult StronglyConnectedComponents(const Graph& g) {
  const NodeId n = g.NumVertices();
  SccResult result;
  result.label.assign(n, kInvalidNode);

  // Iterative Tarjan.
  std::vector<int64_t> index(n, -1), lowlink(n, 0);
  std::vector<uint8_t> on_stack(n, 0);
  std::vector<NodeId> stack;
  int64_t next_index = 0;

  struct Frame {
    NodeId v;
    size_t child;
  };
  std::vector<Frame> call_stack;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    call_stack.push_back({root, 0});
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      NodeId v = frame.v;
      if (frame.child == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = 1;
      }
      auto nbrs = g.OutNeighborNodes(v);
      bool descended = false;
      while (frame.child < nbrs.size()) {
        NodeId w = nbrs[frame.child];
        ++frame.child;
        if (index[w] == -1) {
          call_stack.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      }
      if (descended) continue;
      // All children processed: maybe pop an SCC, then propagate lowlink.
      if (lowlink[v] == index[v]) {
        NodeId comp = result.num_components++;
        result.sizes.push_back(0);
        NodeId w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          result.label[w] = comp;
          ++result.sizes[comp];
        } while (w != v);
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        NodeId parent = call_stack.back().v;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  return result;
}

double SpectralRadius(const Graph& g, int iters) {
  const NodeId n = g.NumVertices();
  if (n == 0) return 0.0;
  Vec x(n, 1.0 / std::sqrt(static_cast<double>(n))), next(n);
  double rayleigh = 0.0;
  for (int it = 0; it < iters; ++it) {
    // next = (A + I) x to avoid bipartite oscillation; subtract the shift
    // from the Rayleigh quotient at the end.
    next = x;
    for (NodeId v = 0; v < n; ++v) {
      auto nodes = g.InNeighborNodes(v);
      auto edges = g.InNeighborEdges(v);
      for (size_t i = 0; i < nodes.size(); ++i) {
        next[v] += g.EdgeWeight(edges[i]) * x[nodes[i]];
      }
    }
    double norm = Norm2(next);
    if (norm == 0.0) return 0.0;
    rayleigh = Dot(x, next) / Dot(x, x);
    for (NodeId v = 0; v < n; ++v) x[v] = next[v] / norm;
  }
  return std::max(0.0, rayleigh - 1.0);  // undo the +I shift
}

}  // namespace sparsify
