#include "src/metrics/distance.h"

#include <algorithm>

#include "src/util/stats.h"
#include "src/util/thread_pool.h"

namespace sparsify {

std::vector<double> ShortestPathDistances(const Graph& g, NodeId src) {
  return ShortestPathDistances(g, src, LocalTraversalScratch());
}

StretchResult SpspStretch(const Graph& original, const Graph& sparsified,
                          int num_pairs, Rng& rng) {
  StretchResult result;
  const NodeId n = original.NumVertices();
  if (n < 2 || num_pairs <= 0) return result;
  // Group sampled pairs by source so each source costs two SSSP runs.
  int num_sources = std::max(1, num_pairs / 64);
  int pairs_per_source = (num_pairs + num_sources - 1) / num_sources;
  // Every sample is drawn up front in the exact order the sequential loop
  // consumed the stream (the BFS itself is randomness-free), so each
  // source's two SSSP runs are pure and fan out as engine subtasks. The
  // per-source records are folded in source order below, which makes the
  // result bit-identical at any subtask thread count (including none).
  std::vector<NodeId> sources(num_sources);
  std::vector<std::vector<NodeId>> dsts(
      num_sources, std::vector<NodeId>(pairs_per_source));
  for (int s = 0; s < num_sources; ++s) {
    sources[s] = static_cast<NodeId>(rng.NextUint(n));
    for (int i = 0; i < pairs_per_source; ++i) {
      dsts[s][i] = static_cast<NodeId>(rng.NextUint(n));
    }
  }
  struct SourceRecord {
    std::vector<double> stretches;
    int broken = 0;
    int total = 0;
  };
  std::vector<SourceRecord> records(num_sources);
  NestedParallelFor(
      CurrentSubtaskPool(), static_cast<size_t>(num_sources), [&](size_t s) {
        NodeId src = sources[s];
        // One scratch per claiming thread; the original-graph distances
        // are probed into a small per-destination buffer before the
        // sparsified traversal reuses the scratch — never two O(n)
        // distance vectors.
        TraversalScratch& scratch = LocalTraversalScratch();
        Traverse(original, src, scratch);
        std::vector<double> d_orig(dsts[s].size());
        for (size_t i = 0; i < dsts[s].size(); ++i) {
          d_orig[i] = scratch.DistanceOf(dsts[s][i]);
        }
        Traverse(sparsified, src, scratch);
        SourceRecord& rec = records[s];
        for (size_t i = 0; i < dsts[s].size(); ++i) {
          NodeId dst = dsts[s][i];
          if (dst == src || d_orig[i] == kInfDistance) continue;  // excluded
          ++rec.total;
          double ds = scratch.DistanceOf(dst);
          if (ds == kInfDistance) {
            ++rec.broken;
          } else if (d_orig[i] > 0.0) {
            rec.stretches.push_back(ds / d_orig[i]);
          }
        }
      });
  std::vector<double> stretches;
  int broken = 0, total = 0;
  for (const SourceRecord& rec : records) {
    stretches.insert(stretches.end(), rec.stretches.begin(),
                     rec.stretches.end());
    broken += rec.broken;
    total += rec.total;
  }
  result.mean_stretch = Mean(stretches);
  result.unreachable = total > 0 ? static_cast<double>(broken) / total : 0.0;
  result.pairs_evaluated = static_cast<int>(stretches.size());
  return result;
}

double Eccentricity(const Graph& g, NodeId v) {
  // The kernel folds the max into the sweep itself — no distance vector,
  // no O(n) rescan.
  TraversalSummary sum = Traverse(g, v, LocalTraversalScratch());
  // A vertex that reaches nothing but itself has no finite eccentricity.
  return sum.reached <= 1 ? kInfDistance : sum.max_dist;
}

StretchResult EccentricityStretch(const Graph& original,
                                  const Graph& sparsified, int num_sources,
                                  Rng& rng) {
  StretchResult result;
  const NodeId n = original.NumVertices();
  if (n == 0 || num_sources <= 0) return result;
  // Sources are drawn once; each source's eccentricity pair is pure, so
  // the sources fan out as engine subtasks and fold in sample order —
  // bit-identical to the sequential loop at any subtask thread count.
  std::vector<uint64_t> samples =
      rng.SampleWithoutReplacement(n, std::min<uint64_t>(n, num_sources));
  struct SourceRecord {
    double stretch = -1.0;  // < 0: no finite stretch recorded
    bool counted = false;
    bool broken = false;
  };
  std::vector<SourceRecord> records(samples.size());
  NestedParallelFor(
      CurrentSubtaskPool(), samples.size(), [&](size_t s) {
        NodeId v = static_cast<NodeId>(samples[s]);
        // The original-graph sweep folds its own max, so an infinite/zero
        // eccentricity skips the sparsified traversal outright — the
        // legacy code paid for a full distance vector before finding out.
        double eo = Eccentricity(original, v);
        if (eo == kInfDistance || eo == 0.0) return;
        SourceRecord& rec = records[s];
        rec.counted = true;
        double es = Eccentricity(sparsified, v);
        if (es == kInfDistance) {
          rec.broken = true;
        } else {
          rec.stretch = es / eo;
        }
      });
  std::vector<double> stretches;
  int broken = 0, total = 0;
  for (const SourceRecord& rec : records) {
    if (!rec.counted) continue;
    ++total;
    if (rec.broken) {
      ++broken;
    } else {
      stretches.push_back(rec.stretch);
    }
  }
  result.mean_stretch = Mean(stretches);
  result.unreachable = total > 0 ? static_cast<double>(broken) / total : 0.0;
  result.pairs_evaluated = static_cast<int>(stretches.size());
  return result;
}

double ApproxDiameter(const Graph& g, int num_seeds, Rng& rng) {
  const NodeId n = g.NumVertices();
  if (n == 0 || num_seeds <= 0) return 0.0;
  // Start vertices are drawn up front (the sweeps consume no randomness,
  // so the stream is unchanged); each seed's sweep chain is sequential by
  // nature but independent of the others, so the seeds fan out as engine
  // subtasks. max() over per-seed bests is order-independent, keeping the
  // result bit-identical to the sequential loop.
  std::vector<NodeId> starts(num_seeds);
  for (int seed = 0; seed < num_seeds; ++seed) {
    starts[seed] = static_cast<NodeId>(rng.NextUint(n));
  }
  std::vector<double> best_of(num_seeds, 0.0);
  NestedParallelFor(
      CurrentSubtaskPool(), static_cast<size_t>(num_seeds), [&](size_t seed) {
        NodeId v = starts[seed];
        TraversalScratch& scratch = LocalTraversalScratch();
        double best = 0.0;
        double prev = -1.0;
        // Iterate: jump to the farthest reachable vertex until no
        // improvement. The kernel summary's (max_dist, farthest) pair is
        // exactly the ascending strict-`>` argmax scan the legacy loop
        // ran over the materialized distance vector.
        for (int it = 0; it < 16; ++it) {
          TraversalSummary sum = Traverse(g, v, scratch);
          best = std::max(best, sum.max_dist);
          if (sum.max_dist <= prev) break;
          prev = sum.max_dist;
          v = sum.farthest;
        }
        best_of[seed] = best;
      });
  double best = 0.0;
  for (double b : best_of) best = std::max(best, b);
  return best;
}

}  // namespace sparsify
