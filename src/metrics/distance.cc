#include "src/metrics/distance.h"

#include <algorithm>
#include <queue>

#include "src/util/stats.h"

namespace sparsify {

std::vector<double> ShortestPathDistances(const Graph& g, NodeId src) {
  std::vector<double> dist(g.NumVertices(), kInfDistance);
  dist[src] = 0.0;
  if (!g.IsWeighted()) {
    std::queue<NodeId> q;
    q.push(src);
    while (!q.empty()) {
      NodeId v = q.front();
      q.pop();
      for (const AdjEntry& a : g.OutNeighbors(v)) {
        if (dist[a.node] == kInfDistance) {
          dist[a.node] = dist[v] + 1.0;
          q.push(a.node);
        }
      }
    }
    return dist;
  }
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    for (const AdjEntry& a : g.OutNeighbors(v)) {
      double nd = d + g.EdgeWeight(a.edge);
      if (nd < dist[a.node]) {
        dist[a.node] = nd;
        pq.emplace(nd, a.node);
      }
    }
  }
  return dist;
}

StretchResult SpspStretch(const Graph& original, const Graph& sparsified,
                          int num_pairs, Rng& rng) {
  StretchResult result;
  const NodeId n = original.NumVertices();
  if (n < 2 || num_pairs <= 0) return result;
  // Group sampled pairs by source so each source costs two SSSP runs.
  int num_sources = std::max(1, num_pairs / 64);
  int pairs_per_source = (num_pairs + num_sources - 1) / num_sources;
  std::vector<double> stretches;
  int broken = 0, total = 0;
  for (int s = 0; s < num_sources; ++s) {
    NodeId src = static_cast<NodeId>(rng.NextUint(n));
    std::vector<double> d_orig = ShortestPathDistances(original, src);
    std::vector<double> d_spar = ShortestPathDistances(sparsified, src);
    for (int i = 0; i < pairs_per_source; ++i) {
      NodeId dst = static_cast<NodeId>(rng.NextUint(n));
      if (dst == src || d_orig[dst] == kInfDistance) continue;  // excluded
      ++total;
      if (d_spar[dst] == kInfDistance) {
        ++broken;
      } else if (d_orig[dst] > 0.0) {
        stretches.push_back(d_spar[dst] / d_orig[dst]);
      }
    }
  }
  result.mean_stretch = Mean(stretches);
  result.unreachable = total > 0 ? static_cast<double>(broken) / total : 0.0;
  result.pairs_evaluated = static_cast<int>(stretches.size());
  return result;
}

double Eccentricity(const Graph& g, NodeId v) {
  std::vector<double> dist = ShortestPathDistances(g, v);
  double ecc = -1.0;
  for (NodeId u = 0; u < g.NumVertices(); ++u) {
    if (u != v && dist[u] != kInfDistance) ecc = std::max(ecc, dist[u]);
  }
  // A vertex that reaches nothing but itself has no finite eccentricity.
  return ecc < 0.0 ? kInfDistance : ecc;
}

StretchResult EccentricityStretch(const Graph& original,
                                  const Graph& sparsified, int num_sources,
                                  Rng& rng) {
  StretchResult result;
  const NodeId n = original.NumVertices();
  if (n == 0 || num_sources <= 0) return result;
  std::vector<double> stretches;
  int broken = 0, total = 0;
  for (uint64_t s :
       rng.SampleWithoutReplacement(n, std::min<uint64_t>(n, num_sources))) {
    NodeId v = static_cast<NodeId>(s);
    double eo = Eccentricity(original, v);
    if (eo == kInfDistance || eo == 0.0) continue;
    ++total;
    double es = Eccentricity(sparsified, v);
    if (es == kInfDistance) {
      ++broken;
    } else {
      stretches.push_back(es / eo);
    }
  }
  result.mean_stretch = Mean(stretches);
  result.unreachable = total > 0 ? static_cast<double>(broken) / total : 0.0;
  result.pairs_evaluated = static_cast<int>(stretches.size());
  return result;
}

double ApproxDiameter(const Graph& g, int num_seeds, Rng& rng) {
  const NodeId n = g.NumVertices();
  if (n == 0) return 0.0;
  double best = 0.0;
  for (int seed = 0; seed < num_seeds; ++seed) {
    NodeId v = static_cast<NodeId>(rng.NextUint(n));
    double prev = -1.0;
    // Iterate: jump to the farthest reachable vertex until no improvement.
    for (int it = 0; it < 16; ++it) {
      std::vector<double> dist = ShortestPathDistances(g, v);
      double far_d = 0.0;
      NodeId far_v = v;
      for (NodeId u = 0; u < n; ++u) {
        if (dist[u] != kInfDistance && dist[u] > far_d) {
          far_d = dist[u];
          far_v = u;
        }
      }
      best = std::max(best, far_d);
      if (far_d <= prev) break;
      prev = far_d;
      v = far_v;
    }
  }
  return best;
}

}  // namespace sparsify
