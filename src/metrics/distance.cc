#include "src/metrics/distance.h"

#include <algorithm>
#include <queue>

#include "src/util/stats.h"
#include "src/util/thread_pool.h"

namespace sparsify {

std::vector<double> ShortestPathDistances(const Graph& g, NodeId src) {
  std::vector<double> dist(g.NumVertices(), kInfDistance);
  dist[src] = 0.0;
  if (!g.IsWeighted()) {
    std::queue<NodeId> q;
    q.push(src);
    while (!q.empty()) {
      NodeId v = q.front();
      q.pop();
      for (const AdjEntry& a : g.OutNeighbors(v)) {
        if (dist[a.node] == kInfDistance) {
          dist[a.node] = dist[v] + 1.0;
          q.push(a.node);
        }
      }
    }
    return dist;
  }
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    for (const AdjEntry& a : g.OutNeighbors(v)) {
      double nd = d + g.EdgeWeight(a.edge);
      if (nd < dist[a.node]) {
        dist[a.node] = nd;
        pq.emplace(nd, a.node);
      }
    }
  }
  return dist;
}

StretchResult SpspStretch(const Graph& original, const Graph& sparsified,
                          int num_pairs, Rng& rng) {
  StretchResult result;
  const NodeId n = original.NumVertices();
  if (n < 2 || num_pairs <= 0) return result;
  // Group sampled pairs by source so each source costs two SSSP runs.
  int num_sources = std::max(1, num_pairs / 64);
  int pairs_per_source = (num_pairs + num_sources - 1) / num_sources;
  // Every sample is drawn up front in the exact order the sequential loop
  // consumed the stream (the BFS itself is randomness-free), so each
  // source's two SSSP runs are pure and fan out as engine subtasks. The
  // per-source records are folded in source order below, which makes the
  // result bit-identical at any subtask thread count (including none).
  std::vector<NodeId> sources(num_sources);
  std::vector<std::vector<NodeId>> dsts(
      num_sources, std::vector<NodeId>(pairs_per_source));
  for (int s = 0; s < num_sources; ++s) {
    sources[s] = static_cast<NodeId>(rng.NextUint(n));
    for (int i = 0; i < pairs_per_source; ++i) {
      dsts[s][i] = static_cast<NodeId>(rng.NextUint(n));
    }
  }
  struct SourceRecord {
    std::vector<double> stretches;
    int broken = 0;
    int total = 0;
  };
  std::vector<SourceRecord> records(num_sources);
  NestedParallelFor(
      CurrentSubtaskPool(), static_cast<size_t>(num_sources), [&](size_t s) {
        NodeId src = sources[s];
        std::vector<double> d_orig = ShortestPathDistances(original, src);
        std::vector<double> d_spar = ShortestPathDistances(sparsified, src);
        SourceRecord& rec = records[s];
        for (NodeId dst : dsts[s]) {
          if (dst == src || d_orig[dst] == kInfDistance) continue;  // excluded
          ++rec.total;
          if (d_spar[dst] == kInfDistance) {
            ++rec.broken;
          } else if (d_orig[dst] > 0.0) {
            rec.stretches.push_back(d_spar[dst] / d_orig[dst]);
          }
        }
      });
  std::vector<double> stretches;
  int broken = 0, total = 0;
  for (const SourceRecord& rec : records) {
    stretches.insert(stretches.end(), rec.stretches.begin(),
                     rec.stretches.end());
    broken += rec.broken;
    total += rec.total;
  }
  result.mean_stretch = Mean(stretches);
  result.unreachable = total > 0 ? static_cast<double>(broken) / total : 0.0;
  result.pairs_evaluated = static_cast<int>(stretches.size());
  return result;
}

double Eccentricity(const Graph& g, NodeId v) {
  std::vector<double> dist = ShortestPathDistances(g, v);
  double ecc = -1.0;
  for (NodeId u = 0; u < g.NumVertices(); ++u) {
    if (u != v && dist[u] != kInfDistance) ecc = std::max(ecc, dist[u]);
  }
  // A vertex that reaches nothing but itself has no finite eccentricity.
  return ecc < 0.0 ? kInfDistance : ecc;
}

StretchResult EccentricityStretch(const Graph& original,
                                  const Graph& sparsified, int num_sources,
                                  Rng& rng) {
  StretchResult result;
  const NodeId n = original.NumVertices();
  if (n == 0 || num_sources <= 0) return result;
  // Sources are drawn once; each source's eccentricity pair is pure, so
  // the sources fan out as engine subtasks and fold in sample order —
  // bit-identical to the sequential loop at any subtask thread count.
  std::vector<uint64_t> samples =
      rng.SampleWithoutReplacement(n, std::min<uint64_t>(n, num_sources));
  struct SourceRecord {
    double stretch = -1.0;  // < 0: no finite stretch recorded
    bool counted = false;
    bool broken = false;
  };
  std::vector<SourceRecord> records(samples.size());
  NestedParallelFor(
      CurrentSubtaskPool(), samples.size(), [&](size_t s) {
        NodeId v = static_cast<NodeId>(samples[s]);
        double eo = Eccentricity(original, v);
        if (eo == kInfDistance || eo == 0.0) return;
        SourceRecord& rec = records[s];
        rec.counted = true;
        double es = Eccentricity(sparsified, v);
        if (es == kInfDistance) {
          rec.broken = true;
        } else {
          rec.stretch = es / eo;
        }
      });
  std::vector<double> stretches;
  int broken = 0, total = 0;
  for (const SourceRecord& rec : records) {
    if (!rec.counted) continue;
    ++total;
    if (rec.broken) {
      ++broken;
    } else {
      stretches.push_back(rec.stretch);
    }
  }
  result.mean_stretch = Mean(stretches);
  result.unreachable = total > 0 ? static_cast<double>(broken) / total : 0.0;
  result.pairs_evaluated = static_cast<int>(stretches.size());
  return result;
}

double ApproxDiameter(const Graph& g, int num_seeds, Rng& rng) {
  const NodeId n = g.NumVertices();
  if (n == 0 || num_seeds <= 0) return 0.0;
  // Start vertices are drawn up front (the sweeps consume no randomness,
  // so the stream is unchanged); each seed's sweep chain is sequential by
  // nature but independent of the others, so the seeds fan out as engine
  // subtasks. max() over per-seed bests is order-independent, keeping the
  // result bit-identical to the sequential loop.
  std::vector<NodeId> starts(num_seeds);
  for (int seed = 0; seed < num_seeds; ++seed) {
    starts[seed] = static_cast<NodeId>(rng.NextUint(n));
  }
  std::vector<double> best_of(num_seeds, 0.0);
  NestedParallelFor(
      CurrentSubtaskPool(), static_cast<size_t>(num_seeds), [&](size_t seed) {
        NodeId v = starts[seed];
        double best = 0.0;
        double prev = -1.0;
        // Iterate: jump to the farthest reachable vertex until no
        // improvement.
        for (int it = 0; it < 16; ++it) {
          std::vector<double> dist = ShortestPathDistances(g, v);
          double far_d = 0.0;
          NodeId far_v = v;
          for (NodeId u = 0; u < n; ++u) {
            if (dist[u] != kInfDistance && dist[u] > far_d) {
              far_d = dist[u];
              far_v = u;
            }
          }
          best = std::max(best, far_d);
          if (far_d <= prev) break;
          prev = far_d;
          v = far_v;
        }
        best_of[seed] = best;
      });
  double best = 0.0;
  for (double b : best_of) best = std::max(best, b);
  return best;
}

}  // namespace sparsify
