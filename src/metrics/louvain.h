// Louvain community detection (Blondel et al. 2008), the method the paper
// uses for its clustering metrics (section 4.4): number of communities and
// clustering F1 similarity. Works on the undirected (symmetrized) weighted
// graph; modularity with resolution 1.
#ifndef SPARSIFY_METRICS_LOUVAIN_H_
#define SPARSIFY_METRICS_LOUVAIN_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace sparsify {

/// A clustering of the vertex set.
struct Clustering {
  std::vector<int> label;   // community of each vertex, in [0, num_clusters)
  int num_clusters = 0;
  double modularity = 0.0;
};

/// Runs Louvain. Non-deterministic via vertex visiting order (pass a seeded
/// rng for reproducibility). Isolated vertices become singleton communities.
Clustering LouvainCommunities(const Graph& g, Rng& rng, int max_passes = 10);

/// Modularity of an arbitrary labeling of `g` (undirected interpretation).
double Modularity(const Graph& g, const std::vector<int>& label);

}  // namespace sparsify

#endif  // SPARSIFY_METRICS_LOUVAIN_H_
