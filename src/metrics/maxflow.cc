#include "src/metrics/maxflow.h"

#include <algorithm>
#include <limits>

#include "src/metrics/components.h"

namespace sparsify {

namespace {

// Dinic's algorithm over an explicit residual arc list.
class Dinic {
 public:
  explicit Dinic(NodeId n) : head_(n, -1), level_(n), iter_(n) {}

  void AddArc(NodeId u, NodeId v, double cap_uv, double cap_vu) {
    arcs_.push_back({v, head_[u], cap_uv});
    head_[u] = static_cast<int>(arcs_.size()) - 1;
    arcs_.push_back({u, head_[v], cap_vu});
    head_[v] = static_cast<int>(arcs_.size()) - 1;
  }

  double Run(NodeId s, NodeId t) {
    double flow = 0.0;
    while (Bfs(s, t)) {
      std::copy(head_.begin(), head_.end(), iter_.begin());
      double f;
      while ((f = Dfs(s, t, std::numeric_limits<double>::infinity())) > 0.0) {
        flow += f;
      }
    }
    return flow;
  }

 private:
  struct Arc {
    NodeId to;
    int next;
    double cap;
  };

  // Level BFS over the residual arcs. A flat frontier vector with a head
  // cursor replaces the old std::deque-backed std::queue: identical FIFO
  // pop order (so identical level assignment), reused across the O(V)
  // phases of a single Run with zero per-phase allocation.
  bool Bfs(NodeId s, NodeId t) {
    std::fill(level_.begin(), level_.end(), -1);
    frontier_.clear();
    level_[s] = 0;
    frontier_.push_back(s);
    for (size_t head = 0; head < frontier_.size(); ++head) {
      NodeId v = frontier_[head];
      for (int i = head_[v]; i >= 0; i = arcs_[i].next) {
        const Arc& a = arcs_[i];
        if (a.cap > 1e-12 && level_[a.to] < 0) {
          level_[a.to] = level_[v] + 1;
          frontier_.push_back(a.to);
        }
      }
    }
    return level_[t] >= 0;
  }

  double Dfs(NodeId v, NodeId t, double limit) {
    if (v == t) return limit;
    for (int& i = iter_[v]; i >= 0; i = arcs_[i].next) {
      Arc& a = arcs_[i];
      if (a.cap > 1e-12 && level_[a.to] == level_[v] + 1) {
        double d = Dfs(a.to, t, std::min(limit, a.cap));
        if (d > 0.0) {
          a.cap -= d;
          arcs_[i ^ 1].cap += d;
          return d;
        }
      }
    }
    return 0.0;
  }

  std::vector<Arc> arcs_;
  std::vector<int> head_;
  std::vector<int> level_;
  std::vector<int> iter_;
  std::vector<NodeId> frontier_;
};

}  // namespace

double MaxFlow(const Graph& g, NodeId s, NodeId t) {
  if (s == t) return 0.0;
  Dinic dinic(g.NumVertices());
  for (const Edge& e : g.Edges()) {
    if (g.IsDirected()) {
      dinic.AddArc(e.u, e.v, e.w, 0.0);
    } else {
      dinic.AddArc(e.u, e.v, e.w, e.w);
    }
  }
  return dinic.Run(s, t);
}

FlowStretchResult MaxFlowStretch(const Graph& original,
                                 const Graph& sparsified, int num_pairs,
                                 Rng& rng) {
  FlowStretchResult result;
  const NodeId n = original.NumVertices();
  if (n < 2 || num_pairs <= 0) return result;
  ComponentResult cc = ConnectedComponents(original);
  std::vector<double> ratios;
  int zero = 0, total = 0;
  int attempts = 0;
  const int max_attempts = num_pairs * 50;
  while (total < num_pairs && attempts++ < max_attempts) {
    NodeId s = static_cast<NodeId>(rng.NextUint(n));
    NodeId t = static_cast<NodeId>(rng.NextUint(n));
    if (s == t || cc.label[s] != cc.label[t]) continue;  // excluded pairs
    double fo = MaxFlow(original, s, t);
    if (fo <= 0.0) continue;
    ++total;
    double fs = MaxFlow(sparsified, s, t);
    if (fs <= 0.0) ++zero;
    ratios.push_back(fs / fo);
  }
  double sum = 0.0;
  for (double r : ratios) sum += r;
  result.mean_ratio = ratios.empty() ? 0.0 : sum / ratios.size();
  result.pairs_evaluated = total;
  result.zero_flow_fraction =
      total > 0 ? static_cast<double>(zero) / total : 0.0;
  return result;
}

}  // namespace sparsify
