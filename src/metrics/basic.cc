#include "src/metrics/basic.h"

#include <algorithm>

#include "src/linalg/laplacian.h"
#include "src/util/stats.h"

namespace sparsify {

std::vector<double> DegreeHistogram(const Graph& g, int bins,
                                    NodeId max_degree) {
  std::vector<double> hist(bins, 0.0);
  double width =
      std::max<double>(1.0, static_cast<double>(max_degree + 1)) / bins;
  for (NodeId v = 0; v < g.NumVertices(); ++v) {
    int b = static_cast<int>(static_cast<double>(g.OutDegree(v)) / width);
    b = std::clamp(b, 0, bins - 1);
    hist[b] += 1.0;
  }
  return hist;
}

double DegreeDistributionDistance(const Graph& original,
                                  const Graph& sparsified, int bins) {
  // Each histogram is binned over its OWN degree range: pruning scales all
  // degrees down, and the metric should compare the distributions' SHAPE
  // (e.g. the power-law profile), not the absolute scale — otherwise every
  // sparsifier at prune rate rho trivially scores ~-ln(overlap of
  // [0, (1-rho) d_max] with [0, d_max]) and Random could never win Fig. 2.
  std::vector<double> p =
      DegreeHistogram(original, bins, original.MaxDegree());
  std::vector<double> q =
      DegreeHistogram(sparsified, bins, sparsified.MaxDegree());
  return BhattacharyyaDistance(p, q);
}

double QuadraticFormSimilarity(const Graph& original, const Graph& sparsified,
                               int num_vectors, Rng& rng) {
  Graph go_holder, gs_holder;
  const Graph* go = &original;
  const Graph* gs = &sparsified;
  if (original.IsDirected()) {
    go_holder = original.Symmetrized();
    go = &go_holder;
  }
  if (sparsified.IsDirected()) {
    gs_holder = sparsified.Symmetrized();
    gs = &gs_holder;
  }
  std::vector<double> ratios;
  Vec x(go->NumVertices());
  for (int i = 0; i < num_vectors; ++i) {
    for (double& xi : x) xi = rng.NextGaussian();
    double qo = QuadraticForm(*go, x);
    double qs = QuadraticForm(*gs, x);
    if (qo > 0.0) ratios.push_back(qs / qo);
  }
  return Mean(ratios);
}

}  // namespace sparsify
