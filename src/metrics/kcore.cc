#include "src/metrics/kcore.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "src/graph/traversal.h"
#include "src/metrics/distance.h"

namespace sparsify {

std::vector<NodeId> CoreNumbers(const Graph& g) {
  const NodeId n = g.NumVertices();
  std::vector<NodeId> degree(n);
  NodeId max_degree = 0;
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = g.OutDegree(v);
    if (g.IsDirected()) degree[v] += g.InDegree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket sort vertices by degree (Batagelj-Zaversnik peeling).
  std::vector<NodeId> bin(max_degree + 2, 0);
  for (NodeId v = 0; v < n; ++v) ++bin[degree[v]];
  NodeId start = 0;
  for (NodeId d = 0; d <= max_degree; ++d) {
    NodeId count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<NodeId> pos(n), vert(n);
  for (NodeId v = 0; v < n; ++v) {
    pos[v] = bin[degree[v]]++;
    vert[pos[v]] = v;
  }
  // Restore bin starts.
  for (NodeId d = max_degree; d > 0; --d) bin[d] = bin[d - 1];
  bin[0] = 0;

  std::vector<NodeId> core = degree;
  auto peel_neighbor = [&](NodeId v, NodeId u) {
    if (core[u] > core[v]) {
      // Move u to the front of its bucket, then shrink its degree.
      NodeId du = core[u];
      NodeId pu = pos[u];
      NodeId pw = bin[du];
      NodeId w = vert[pw];
      if (u != w) {
        std::swap(vert[pu], vert[pw]);
        pos[u] = pw;
        pos[w] = pu;
      }
      ++bin[du];
      --core[u];
    }
  };
  for (NodeId i = 0; i < n; ++i) {
    NodeId v = vert[i];
    for (NodeId u : g.OutNeighborNodes(v)) peel_neighbor(v, u);
    if (g.IsDirected()) {
      for (NodeId u : g.InNeighborNodes(v)) peel_neighbor(v, u);
    }
  }
  return core;
}

NodeId Degeneracy(const Graph& g) {
  NodeId best = 0;
  for (NodeId c : CoreNumbers(g)) best = std::max(best, c);
  return best;
}

std::vector<double> HarmonicCentrality(const Graph& g) {
  const NodeId n = g.NumVertices();
  std::vector<double> harmonic(n, 0.0);
  TraversalScratch& scratch = LocalTraversalScratch();
  for (NodeId v = 0; v < n; ++v) {
    Traverse(g, v, scratch);
    double h = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      double d = scratch.DistanceOf(u);
      if (u != v && d != kInfDistance && d > 0.0) {
        h += 1.0 / d;
      }
    }
    harmonic[v] = h;
  }
  return harmonic;
}

std::vector<double> WeightedBetweennessCentrality(const Graph& g) {
  const NodeId n = g.NumVertices();
  std::vector<double> centrality(n, 0.0);
  std::vector<double> sigma(n), delta(n), dist(n);
  std::vector<NodeId> order;
  std::vector<uint8_t> settled(n);
  using Item = std::pair<double, NodeId>;
  for (NodeId src = 0; src < n; ++src) {
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    std::fill(dist.begin(), dist.end(),
              std::numeric_limits<double>::infinity());
    std::fill(settled.begin(), settled.end(), 0);
    order.clear();
    sigma[src] = 1.0;
    dist[src] = 0.0;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.emplace(0.0, src);
    while (!pq.empty()) {
      auto [d, v] = pq.top();
      pq.pop();
      if (settled[v]) continue;
      settled[v] = 1;
      order.push_back(v);
      auto nodes = g.OutNeighborNodes(v);
      auto edges = g.OutNeighborEdges(v);
      for (size_t i = 0; i < nodes.size(); ++i) {
        NodeId u = nodes[i];
        double nd = d + g.EdgeWeight(edges[i]);
        if (nd < dist[u] - 1e-12) {
          dist[u] = nd;
          sigma[u] = sigma[v];
          pq.emplace(nd, u);
        } else if (std::abs(nd - dist[u]) <= 1e-12 && !settled[u]) {
          sigma[u] += sigma[v];
        }
      }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      NodeId w = *it;
      auto nodes = g.OutNeighborNodes(w);
      auto edges = g.OutNeighborEdges(w);
      for (size_t i = 0; i < nodes.size(); ++i) {
        NodeId u = nodes[i];
        if (std::abs(dist[u] - dist[w] - g.EdgeWeight(edges[i])) <= 1e-12 &&
            sigma[u] > 0.0) {
          delta[w] += sigma[w] / sigma[u] * (1.0 + delta[u]);
        }
      }
      if (w != src) centrality[w] += delta[w];
    }
  }
  if (!g.IsDirected()) {
    for (double& c : centrality) c *= 0.5;
  }
  return centrality;
}

}  // namespace sparsify
