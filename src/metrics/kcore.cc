#include "src/metrics/kcore.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "src/metrics/distance.h"

namespace sparsify {

std::vector<NodeId> CoreNumbers(const Graph& g) {
  const NodeId n = g.NumVertices();
  std::vector<NodeId> degree(n);
  NodeId max_degree = 0;
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = g.OutDegree(v);
    if (g.IsDirected()) degree[v] += g.InDegree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket sort vertices by degree (Batagelj-Zaversnik peeling).
  std::vector<NodeId> bin(max_degree + 2, 0);
  for (NodeId v = 0; v < n; ++v) ++bin[degree[v]];
  NodeId start = 0;
  for (NodeId d = 0; d <= max_degree; ++d) {
    NodeId count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<NodeId> pos(n), vert(n);
  for (NodeId v = 0; v < n; ++v) {
    pos[v] = bin[degree[v]]++;
    vert[pos[v]] = v;
  }
  // Restore bin starts.
  for (NodeId d = max_degree; d > 0; --d) bin[d] = bin[d - 1];
  bin[0] = 0;

  std::vector<NodeId> core = degree;
  auto peel_neighbor = [&](NodeId v, NodeId u) {
    if (core[u] > core[v]) {
      // Move u to the front of its bucket, then shrink its degree.
      NodeId du = core[u];
      NodeId pu = pos[u];
      NodeId pw = bin[du];
      NodeId w = vert[pw];
      if (u != w) {
        std::swap(vert[pu], vert[pw]);
        pos[u] = pw;
        pos[w] = pu;
      }
      ++bin[du];
      --core[u];
    }
  };
  for (NodeId i = 0; i < n; ++i) {
    NodeId v = vert[i];
    for (const AdjEntry& a : g.OutNeighbors(v)) peel_neighbor(v, a.node);
    if (g.IsDirected()) {
      for (const AdjEntry& a : g.InNeighbors(v)) peel_neighbor(v, a.node);
    }
  }
  return core;
}

NodeId Degeneracy(const Graph& g) {
  NodeId best = 0;
  for (NodeId c : CoreNumbers(g)) best = std::max(best, c);
  return best;
}

std::vector<double> HarmonicCentrality(const Graph& g) {
  const NodeId n = g.NumVertices();
  std::vector<double> harmonic(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    std::vector<double> dist = ShortestPathDistances(g, v);
    double h = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      if (u != v && dist[u] != kInfDistance && dist[u] > 0.0) {
        h += 1.0 / dist[u];
      }
    }
    harmonic[v] = h;
  }
  return harmonic;
}

std::vector<double> WeightedBetweennessCentrality(const Graph& g) {
  const NodeId n = g.NumVertices();
  std::vector<double> centrality(n, 0.0);
  std::vector<double> sigma(n), delta(n), dist(n);
  std::vector<NodeId> order;
  using Item = std::pair<double, NodeId>;
  for (NodeId src = 0; src < n; ++src) {
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    std::fill(dist.begin(), dist.end(),
              std::numeric_limits<double>::infinity());
    order.clear();
    sigma[src] = 1.0;
    dist[src] = 0.0;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.emplace(0.0, src);
    std::vector<uint8_t> settled(n, 0);
    while (!pq.empty()) {
      auto [d, v] = pq.top();
      pq.pop();
      if (settled[v]) continue;
      settled[v] = 1;
      order.push_back(v);
      for (const AdjEntry& a : g.OutNeighbors(v)) {
        double nd = d + g.EdgeWeight(a.edge);
        if (nd < dist[a.node] - 1e-12) {
          dist[a.node] = nd;
          sigma[a.node] = sigma[v];
          pq.emplace(nd, a.node);
        } else if (std::abs(nd - dist[a.node]) <= 1e-12 &&
                   !settled[a.node]) {
          sigma[a.node] += sigma[v];
        }
      }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      NodeId w = *it;
      for (const AdjEntry& a : g.OutNeighbors(w)) {
        if (std::abs(dist[a.node] - dist[w] - g.EdgeWeight(a.edge)) <=
                1e-12 &&
            sigma[a.node] > 0.0) {
          delta[w] += sigma[w] / sigma[a.node] * (1.0 + delta[a.node]);
        }
      }
      if (w != src) centrality[w] += delta[w];
    }
  }
  if (!g.IsDirected()) {
    for (double& c : centrality) c *= 0.5;
  }
  return centrality;
}

}  // namespace sparsify
