// Centrality metrics (paper sections 2.2.3, 2.2.5, 3.3.3) and the top-k
// precision evaluator used to compare sparsified-vs-original rankings.
//
//   Betweenness: Brandes' algorithm; exact over all sources or sampled over
//     `num_samples` pivots (Geisberger-style scaled contributions).
//   Closeness:   1 / sum of distances to reachable vertices, scaled by the
//     reachable fraction (the standard Wasserman-Faust correction for
//     disconnected graphs).
//   Eigenvector: power iteration on A (left eigenvector / in-edges for
//     directed graphs, per Table 1 note *).
//   Katz:        iterative x = alpha A^T x + 1 with
//     alpha = 1 / (max_degree + 1) (paper section 2.2.3).
//   PageRank:    power method with damping 0.85 and dangling-mass
//     redistribution.
#ifndef SPARSIFY_METRICS_CENTRALITY_H_
#define SPARSIFY_METRICS_CENTRALITY_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace sparsify {

/// Exact Brandes betweenness centrality (unweighted shortest paths).
std::vector<double> BetweennessCentrality(const Graph& g);

/// Sampled betweenness: Brandes contributions from `num_samples` random
/// pivots, scaled by n / num_samples (paper uses 500 pivots).
std::vector<double> ApproxBetweennessCentrality(const Graph& g,
                                                int num_samples, Rng& rng);

/// Closeness centrality of every vertex.
std::vector<double> ClosenessCentrality(const Graph& g);

/// Eigenvector centrality by power iteration (`iters` steps, L2 normalized).
std::vector<double> EigenvectorCentrality(const Graph& g, int iters = 100);

/// Katz centrality, alpha defaulting to 1/(max_degree + 1).
std::vector<double> KatzCentrality(const Graph& g, double alpha = 0.0,
                                   int iters = 100);

/// PageRank with damping factor `d` (paper's application-level metric).
std::vector<double> PageRank(const Graph& g, double d = 0.85,
                             int iters = 100, double tol = 1e-10);

/// Fraction of the top-k vertices of `reference` (by score, ties broken by
/// vertex id) that also appear in the top-k of `candidate`. The paper's
/// quality measure for all centrality metrics, with k = 100.
double TopKPrecision(const std::vector<double>& reference,
                     const std::vector<double>& candidate, int k);

/// Indices of the k largest entries (ties broken by index).
std::vector<NodeId> TopKIndices(const std::vector<double>& scores, int k);

}  // namespace sparsify

#endif  // SPARSIFY_METRICS_CENTRALITY_H_
