// Distance metrics (paper sections 2.2.2 and 3.3.2): single-source shortest
// paths (BFS for unweighted, Dijkstra for weighted), sampled SPSP stretch,
// sampled eccentricity stretch, and the iterative double-sweep approximate
// diameter.
#ifndef SPARSIFY_METRICS_DISTANCE_H_
#define SPARSIFY_METRICS_DISTANCE_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/graph/traversal.h"
#include "src/util/rng.h"

namespace sparsify {

// kInfDistance now lives in src/graph/traversal.h (re-exported here).

/// Distances from `src` to every vertex along out-edges. BFS (hop counts)
/// for unweighted graphs, Dijkstra otherwise. Unreachable vertices get
/// kInfDistance. Convenience wrapper over the traversal kernel using the
/// calling thread's scratch; hot loops should call the kernel directly
/// (src/graph/traversal.h) and read scratch.DistanceOf to skip the O(n)
/// result materialization.
std::vector<double> ShortestPathDistances(const Graph& g, NodeId src);

/// Mean SPSP stretch and companion statistics.
struct StretchResult {
  double mean_stretch = 0.0;   // mean of d_sparsified / d_original
  double unreachable = 0.0;    // fraction of sampled pairs that became
                               // unreachable in the sparsified graph
  int pairs_evaluated = 0;     // pairs contributing to mean_stretch
};

/// Samples up to `num_pairs` source-destination pairs reachable in
/// `original` (the paper's SPSP, section 3.3.2; pairs in different
/// components are excluded) and reports the mean distance stretch in
/// `sparsified`. Pairs unreachable in the sparsified graph are counted in
/// `unreachable` and excluded from the mean.
StretchResult SpspStretch(const Graph& original, const Graph& sparsified,
                          int num_pairs, Rng& rng);

/// Samples `num_sources` vertices and compares their eccentricities
/// (longest finite shortest-path distance) between graphs. Vertices with no
/// finite eccentricity in either graph are skipped.
StretchResult EccentricityStretch(const Graph& original,
                                  const Graph& sparsified, int num_sources,
                                  Rng& rng);

/// Iterative double-sweep diameter lower bound (paper section 3.3.2):
/// starting from a random vertex, repeatedly jump to the farthest vertex
/// found; repeated with `num_seeds` random seeds, the best (largest) sweep
/// value is returned. Infinite-distance pairs are ignored (diameter within
/// the largest reachable region).
double ApproxDiameter(const Graph& g, int num_seeds, Rng& rng);

/// Exact eccentricity of `v` ignoring unreachable vertices; kInfDistance if
/// v reaches nothing.
double Eccentricity(const Graph& g, NodeId v);

}  // namespace sparsify

#endif  // SPARSIFY_METRICS_DISTANCE_H_
