#include "src/metrics/centrality.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "src/graph/traversal.h"
#include "src/linalg/vector_ops.h"
#include "src/metrics/distance.h"
#include "src/util/cancel.h"
#include "src/util/thread_pool.h"

namespace sparsify {

namespace {

// One Brandes source accumulation (unweighted BFS DAG), adding the
// dependency of `src` into `centrality` with multiplier `scale`.
//
// The BFS is deliberately push-only over a flat FIFO frontier (a vector
// with a head cursor reproduces std::queue pop order exactly): sigma
// accumulates DURING the traversal, in frontier pop order, so keeping the
// legacy order keeps the floating-point association — and therefore the
// result — bit-identical to the seed implementation. The scratch supplies
// every array (stamps/levels for dist, sigma/delta, the order list), so
// repeated sources allocate nothing; sigma/delta are zeroed only for the
// vertices this source actually reached (the all-zero invariant is
// restored at the end).
void BrandesAccumulate(const Graph& g, NodeId src, double scale,
                       std::vector<double>* centrality,
                       TraversalScratch& s) {
  const NodeId n = g.NumVertices();
  s.Begin(n, /*weighted=*/false);
  s.EnsureBrandes(n);

  s.sigma_[src] = 1.0;
  s.MarkReached(src);
  s.level_[src] = 0;
  s.frontier_.push_back(src);
  for (size_t head = 0; head < s.frontier_.size(); ++head) {
    NodeId v = s.frontier_[head];
    s.order_.push_back(v);
    for (NodeId u : g.OutNeighborNodes(v)) {
      if (!s.Reached(u)) {
        s.MarkReached(u);
        s.level_[u] = s.level_[v] + 1;
        s.frontier_.push_back(u);
      }
      if (s.level_[u] == s.level_[v] + 1) s.sigma_[u] += s.sigma_[v];
    }
  }
  for (auto it = s.order_.rbegin(); it != s.order_.rend(); ++it) {
    NodeId w = *it;
    for (NodeId u : g.OutNeighborNodes(w)) {
      if (s.Reached(u) && s.level_[u] == s.level_[w] + 1 &&
          s.sigma_[u] > 0.0) {
        s.delta_[w] += s.sigma_[w] / s.sigma_[u] * (1.0 + s.delta_[u]);
      }
    }
    if (w != src) (*centrality)[w] += scale * s.delta_[w];
  }
  // Restore the all-zero sigma/delta invariant (only touched vertices).
  for (NodeId w : s.order_) {
    s.sigma_[w] = 0.0;
    s.delta_[w] = 0.0;
  }
}

}  // namespace

std::vector<double> BetweennessCentrality(const Graph& g) {
  std::vector<double> centrality(g.NumVertices(), 0.0);
  TraversalScratch& scratch = LocalTraversalScratch();
  for (NodeId s = 0; s < g.NumVertices(); ++s) {
    BrandesAccumulate(g, s, 1.0, &centrality, scratch);
  }
  // Undirected paths are counted from both endpoints.
  if (!g.IsDirected()) {
    for (double& c : centrality) c *= 0.5;
  }
  return centrality;
}

std::vector<double> ApproxBetweennessCentrality(const Graph& g,
                                                int num_samples, Rng& rng) {
  std::vector<double> centrality(g.NumVertices(), 0.0);
  const NodeId n = g.NumVertices();
  if (n == 0) return centrality;
  int samples = std::min<int>(num_samples, n);
  double scale = static_cast<double>(n) / samples;
  std::vector<uint64_t> pivots = rng.SampleWithoutReplacement(n, samples);
  // Pivots are processed in FIXED batches of kBatch, each batch
  // accumulating into its own partial vector (Brandes mutates shared
  // state, so concurrent pivots must not share an accumulator); the
  // partials fold in batch order. The batch size is a constant — never
  // the thread count — so the floating-point association, and therefore
  // the result, is bit-identical at any subtask thread count.
  constexpr size_t kBatch = 32;
  size_t num_batches = (pivots.size() + kBatch - 1) / kBatch;
  std::vector<std::vector<double>> partials(num_batches);
  NestedParallelFor(CurrentSubtaskPool(), num_batches, [&](size_t b) {
    std::vector<double>& partial = partials[b];
    partial.assign(n, 0.0);
    TraversalScratch& scratch = LocalTraversalScratch();
    size_t end = std::min(pivots.size(), (b + 1) * kBatch);
    for (size_t s = b * kBatch; s < end; ++s) {
      // Per-pivot poll: a batch is 32 full traversals, too coarse for a
      // unit deadline on large graphs.
      SPARSIFY_CHECK_CANCELLED();
      BrandesAccumulate(g, static_cast<NodeId>(pivots[s]), scale, &partial,
                        scratch);
    }
  });
  for (const std::vector<double>& partial : partials) {
    for (NodeId v = 0; v < n; ++v) centrality[v] += partial[v];
  }
  if (!g.IsDirected()) {
    for (double& c : centrality) c *= 0.5;
  }
  return centrality;
}

std::vector<double> ClosenessCentrality(const Graph& g) {
  const NodeId n = g.NumVertices();
  std::vector<double> closeness(n, 0.0);
  // Each vertex's BFS writes only its own slot, so the sources fan out as
  // engine subtasks with bit-identical output at any thread count. The
  // distance fold scans the scratch in ascending vertex order — the same
  // summation order as the legacy materialized-vector loop — without
  // ever allocating the vector.
  NestedParallelFor(CurrentSubtaskPool(), n, [&](size_t src) {
    NodeId v = static_cast<NodeId>(src);
    TraversalScratch& scratch = LocalTraversalScratch();
    Traverse(g, v, scratch);
    double sum = 0.0;
    double reachable = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      if (u != v && scratch.Reached(u)) {
        sum += scratch.DistanceOf(u);
        reachable += 1.0;
      }
    }
    if (sum > 0.0 && n > 1) {
      // Wasserman-Faust: (r / (n-1)) * (r / sum) where r = #reachable.
      closeness[v] = (reachable / (n - 1.0)) * (reachable / sum);
    }
  });
  return closeness;
}

std::vector<double> EigenvectorCentrality(const Graph& g, int iters) {
  const NodeId n = g.NumVertices();
  std::vector<double> x(n, 1.0 / std::sqrt(static_cast<double>(std::max<NodeId>(n, 1))));
  std::vector<double> next(n, 0.0);
  for (int it = 0; it < iters; ++it) {
    // Iterate (A + I) x: the identity shift keeps the dominant eigenvector
    // of A while breaking the +-lambda oscillation of bipartite graphs.
    next = x;
    for (NodeId v = 0; v < n; ++v) {
      // Left eigenvector for directed graphs (Table 1 note *): influence
      // flows along arcs, so v aggregates from its in-neighbors.
      auto nodes = g.InNeighborNodes(v);
      auto edges = g.InNeighborEdges(v);
      for (size_t i = 0; i < nodes.size(); ++i) {
        next[v] += g.EdgeWeight(edges[i]) * x[nodes[i]];
      }
    }
    double norm = Norm2(next);
    if (norm == 0.0) break;
    for (NodeId v = 0; v < n; ++v) x[v] = next[v] / norm;
  }
  return x;
}

std::vector<double> KatzCentrality(const Graph& g, double alpha, int iters) {
  const NodeId n = g.NumVertices();
  if (alpha <= 0.0) {
    alpha = 1.0 / (static_cast<double>(g.MaxDegree()) + 1.0);
  }
  std::vector<double> x(n, 0.0), next(n, 0.0);
  for (int it = 0; it < iters; ++it) {
    for (NodeId v = 0; v < n; ++v) {
      double acc = 0.0;
      for (NodeId u : g.InNeighborNodes(v)) {
        acc += x[u];
      }
      next[v] = alpha * acc + 1.0;
    }
    std::swap(x, next);
  }
  return x;
}

std::vector<double> PageRank(const Graph& g, double d, int iters,
                             double tol) {
  const NodeId n = g.NumVertices();
  if (n == 0) return {};
  std::vector<double> x(n, 1.0 / n), next(n, 0.0);
  for (int it = 0; it < iters; ++it) {
    double dangling = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      if (g.OutDegree(v) == 0) dangling += x[v];
    }
    double base = (1.0 - d) / n + d * dangling / n;
    std::fill(next.begin(), next.end(), base);
    for (NodeId v = 0; v < n; ++v) {
      NodeId deg = g.OutDegree(v);
      if (deg == 0) continue;
      double share = d * x[v] / deg;
      for (NodeId u : g.OutNeighborNodes(v)) {
        next[u] += share;
      }
    }
    double diff = 0.0;
    for (NodeId v = 0; v < n; ++v) diff += std::abs(next[v] - x[v]);
    std::swap(x, next);
    if (diff < tol) break;
  }
  return x;
}

std::vector<NodeId> TopKIndices(const std::vector<double>& scores, int k) {
  std::vector<NodeId> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  k = std::min<int>(k, static_cast<int>(order.size()));
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](NodeId a, NodeId b) {
                      return scores[a] != scores[b] ? scores[a] > scores[b]
                                                    : a < b;
                    });
  order.resize(k);
  return order;
}

double TopKPrecision(const std::vector<double>& reference,
                     const std::vector<double>& candidate, int k) {
  std::vector<NodeId> ref = TopKIndices(reference, k);
  std::vector<NodeId> cand = TopKIndices(candidate, k);
  if (ref.empty()) return 0.0;
  std::unordered_set<NodeId> ref_set(ref.begin(), ref.end());
  int overlap = 0;
  for (NodeId v : cand) {
    if (ref_set.contains(v)) ++overlap;
  }
  return static_cast<double>(overlap) / static_cast<double>(ref.size());
}

}  // namespace sparsify
