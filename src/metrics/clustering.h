// Clustering metrics (paper section 2.2.4): local / mean / global
// clustering coefficients and the clustering F1 similarity between two
// clusterings.
#ifndef SPARSIFY_METRICS_CLUSTERING_H_
#define SPARSIFY_METRICS_CLUSTERING_H_

#include <vector>

#include "src/graph/graph.h"

namespace sparsify {

/// Local clustering coefficient of every vertex: fraction of connected
/// neighbor pairs. Directed graphs use the symmetrized neighborhood (the
/// paper marks LCC weight-insensitive; weights are ignored).
std::vector<double> LocalClusteringCoefficients(const Graph& g);

/// Mean of the local clustering coefficients over all vertices (MCC).
double MeanClusteringCoefficient(const Graph& g);

/// Global clustering coefficient: #closed triplets / #all triplets
/// = 3 * #triangles / sum_v deg(v) (deg(v)-1) / 2.
double GlobalClusteringCoefficient(const Graph& g);

/// Number of triangles in the (symmetrized) graph.
uint64_t CountTriangles(const Graph& g);

/// Clustering F1 similarity (paper section 2.2.4): precision is the share
/// of each cluster captured by its best-matching reference cluster, recall
/// the same sum over the vertex count; F1 is their harmonic mean. Labels
/// need not be compacted. Returns 0 for empty inputs.
double ClusteringF1(const std::vector<int>& clusters,
                    const std::vector<int>& reference);

}  // namespace sparsify

#endif  // SPARSIFY_METRICS_CLUSTERING_H_
