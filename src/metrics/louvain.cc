#include "src/metrics/louvain.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace sparsify {

namespace {

// One level of Louvain on a weighted undirected multigraph given as
// adjacency (with self-loop weights from contracted communities).
// Returns the labels found and writes the contracted graph for the next
// level. `two_m` is the total weight of all edges * 2.
struct Level {
  std::vector<int> label;
  int num_communities = 0;
  bool improved = false;
};

Level OneLevel(const std::vector<std::vector<std::pair<int, double>>>& adj,
               const std::vector<double>& self_loop, double two_m, Rng& rng) {
  const int n = static_cast<int>(adj.size());
  Level lvl;
  lvl.label.resize(n);
  std::iota(lvl.label.begin(), lvl.label.end(), 0);

  // Weighted degree of each node (including self loops twice).
  std::vector<double> k(n, 0.0);
  for (int v = 0; v < n; ++v) {
    k[v] = 2.0 * self_loop[v];
    for (auto [u, w] : adj[v]) k[v] += w;
  }
  // Total degree of each community.
  std::vector<double> sigma_tot = k;

  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);

  std::unordered_map<int, double> weight_to;  // community -> edge weight
  bool any_move = false;
  for (int pass = 0; pass < 32; ++pass) {
    bool moved = false;
    for (int v : order) {
      int cur = lvl.label[v];
      weight_to.clear();
      weight_to[cur] += 0.0;
      for (auto [u, w] : adj[v]) weight_to[lvl.label[u]] += w;
      // Remove v from its community.
      sigma_tot[cur] -= k[v];
      double best_gain = 0.0;
      int best_comm = cur;
      double w_cur = weight_to.count(cur) ? weight_to[cur] : 0.0;
      for (const auto& [comm, w_in] : weight_to) {
        // Delta modularity of moving v into comm (relative to staying
        // alone): w_in/m - sigma_tot*k_v/(2 m^2); compare scaled by 2m.
        double gain =
            (w_in - w_cur) - (sigma_tot[comm] - sigma_tot[cur]) * k[v] / two_m;
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best_comm = comm;
        }
      }
      sigma_tot[best_comm] += k[v];
      if (best_comm != cur) {
        lvl.label[v] = best_comm;
        moved = true;
        any_move = true;
      }
    }
    if (!moved) break;
  }
  // Compact labels.
  std::unordered_map<int, int> remap;
  for (int& lab : lvl.label) {
    auto [it, inserted] = remap.try_emplace(lab, lvl.num_communities);
    if (inserted) ++lvl.num_communities;
    lab = it->second;
  }
  lvl.improved = any_move;
  return lvl;
}

}  // namespace

double Modularity(const Graph& g, const std::vector<int>& label) {
  double m = g.TotalEdgeWeight();
  if (m <= 0.0) return 0.0;
  int num_comm = 0;
  for (int lab : label) num_comm = std::max(num_comm, lab + 1);
  std::vector<double> intra(num_comm, 0.0), total(num_comm, 0.0);
  for (const Edge& e : g.Edges()) {
    if (label[e.u] == label[e.v]) intra[label[e.u]] += e.w;
    total[label[e.u]] += e.w;
    total[label[e.v]] += e.w;
  }
  double q = 0.0;
  for (int c = 0; c < num_comm; ++c) {
    q += intra[c] / m - (total[c] / (2.0 * m)) * (total[c] / (2.0 * m));
  }
  return q;
}

Clustering LouvainCommunities(const Graph& g, Rng& rng, int max_passes) {
  Graph sym_holder;
  const Graph* ug = &g;
  if (g.IsDirected()) {
    sym_holder = g.Symmetrized();
    ug = &sym_holder;
  }
  const int n = static_cast<int>(ug->NumVertices());
  Clustering result;
  result.label.resize(n);
  std::iota(result.label.begin(), result.label.end(), 0);
  result.num_clusters = n;
  double two_m = 2.0 * ug->TotalEdgeWeight();
  if (two_m <= 0.0) {
    result.modularity = 0.0;
    return result;
  }

  // Working multigraph.
  std::vector<std::vector<std::pair<int, double>>> adj(n);
  std::vector<double> self_loop(n, 0.0);
  for (const Edge& e : ug->Edges()) {
    adj[e.u].emplace_back(static_cast<int>(e.v), e.w);
    adj[e.v].emplace_back(static_cast<int>(e.u), e.w);
  }

  for (int level = 0; level < max_passes; ++level) {
    Level lvl = OneLevel(adj, self_loop, two_m, rng);
    // Map global labels through this level's labels.
    for (int v = 0; v < n; ++v) {
      result.label[v] = lvl.label[result.label[v]];
    }
    result.num_clusters = lvl.num_communities;
    if (!lvl.improved) break;
    // Contract communities into a smaller multigraph.
    int nc = lvl.num_communities;
    std::vector<std::unordered_map<int, double>> merged(nc);
    std::vector<double> new_self(nc, 0.0);
    for (size_t v = 0; v < adj.size(); ++v) {
      int cv = lvl.label[v];
      new_self[cv] += self_loop[v];
      for (auto [u, w] : adj[v]) {
        int cu = lvl.label[u];
        if (cu == cv) {
          // Each undirected edge appears twice in adj; halve to a loop.
          new_self[cv] += 0.5 * w;
        } else {
          merged[cv][cu] += w;
        }
      }
    }
    adj.assign(nc, {});
    self_loop = std::move(new_self);
    for (int c = 0; c < nc; ++c) {
      adj[c].reserve(merged[c].size());
      for (const auto& [u, w] : merged[c]) adj[c].emplace_back(u, w);
      std::sort(adj[c].begin(), adj[c].end());
    }
    if (nc == static_cast<int>(lvl.label.size())) break;  // no contraction
  }
  result.modularity = Modularity(*ug, result.label);
  return result;
}

}  // namespace sparsify
