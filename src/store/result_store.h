// Append-only persistent store of completed experiment cells.
//
// One JSONL file: a self-describing header line followed by one flat JSON
// object per completed grid cell. Records are appended and flushed one at a
// time, so after a crash the log is a valid prefix plus at most one
// truncated tail line; replay detects and drops that tail (it is not
// fatal), while corruption anywhere before the tail is. Format version 2
// adds a CRC-32C to every record (interior bit-rot is detected, not
// silently replayed) and an error-record kind (a unit that failed is
// recorded under its CellKey so a resumed sweep knows to resubmit it).
// Version-1 logs are still replayed (their records carry no CRC). See
// README.md in this directory for the format and the crash-recovery
// contract.
#ifndef SPARSIFY_STORE_RESULT_STORE_H_
#define SPARSIFY_STORE_RESULT_STORE_H_

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/store/cell_key.h"

namespace sparsify {

/// One replayed or appended record: the key plus the cell's results, or —
/// when `is_error` — the failure that kept the cell from completing.
/// Error records occupy the same key space as results, so a later success
/// simply overwrites the error (last write wins).
struct StoredCell {
  CellKey key;
  double achieved_prune_rate = 0.0;
  double value = 0.0;
  bool is_error = false;
  std::string error_class;    // "transient" | "permanent" (empty for results)
  std::string error_message;  // sanitized what() of the failure
  int attempts = 0;           // tries consumed before giving up (errors only)
};

/// What Compact() did: how many log lines and bytes the rewrite removed.
struct CompactStats {
  size_t records_before = 0;  // record lines in the log pre-compaction
  size_t records_after = 0;   // distinct keys written out
  uintmax_t bytes_before = 0;
  uintmax_t bytes_after = 0;
};

/// When appended records are fsync'd (flush-to-OS always happens; this
/// controls flush-to-disk). Default kBatch; the SPARSIFY_STORE_FSYNC
/// environment variable (none|batch|always) overrides it at open.
enum class FsyncPolicy {
  kNone,    // never fsync (fastest; a power loss may drop recent records)
  kBatch,   // fsync every ~32 appends and on clean close
  kAlways,  // fsync every append (torture-harness mode)
};

/// Durable map from CellKey to results, backed by an append-only JSONL log.
///
/// Thread-safety: all methods are internally synchronized; Append is safe
/// to call from engine worker threads (the store is the single writer of
/// its file and serializes appends internally). Cross-process (and
/// cross-instance) exclusivity is ENFORCED: the constructor takes an
/// flock-based exclusive lock on `path`.lock before replaying and holds
/// it for the store's lifetime, so a second CLI invocation pointed at the
/// same --store directory fails fast with "store is locked by another
/// process" instead of interleaving JSONL appends.
class ResultStore {
 public:
  /// Current write version. Version 2 = CRC'd records + error kind;
  /// version 1 logs (no CRCs) are read-compatible.
  static constexpr int kFormatVersion = 2;

  /// Conventional file name inside a store directory.
  static std::string DefaultFileName() { return "results.jsonl"; }

  /// Opens (and replays) the log at `path`. A missing file is an empty
  /// store; the header is written on the first Append. Throws
  /// StoreCorruptError when the file exists but is not a result-store log
  /// (bad header), has a corrupt or checksum-failing record before the
  /// final line, or has an unsupported version; StoreLockHeldError when
  /// another ResultStore instance or process holds the lock; IoError on
  /// filesystem failures. (All derive from std::runtime_error.)
  explicit ResultStore(std::string path);

  /// Flushes (per the fsync policy, best-effort) and releases the
  /// inter-process lock.
  ~ResultStore();

  /// Creates `dir` if needed and returns the conventional log path inside
  /// it (for callers that heap-allocate the store themselves).
  static std::string PathInDir(const std::string& dir);

  /// Creates `dir` if needed and opens `dir`/results.jsonl.
  static ResultStore OpenInDir(const std::string& dir);

  // Not movable (internal mutex); OpenInDir relies on guaranteed elision.
  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  const std::string& Path() const { return path_; }

  /// Number of distinct keys currently stored (results AND error records).
  size_t Size() const;

  /// Number of keys whose latest record is an error.
  size_t ErrorCount() const;

  bool Contains(const CellKey& key) const;

  std::optional<StoredCell> Lookup(const CellKey& key) const;

  /// All cells in first-seen order. A key appended twice keeps its original
  /// position with the latest values (last write wins on replay too).
  std::vector<StoredCell> Cells() const;

  /// Bytes of truncated tail dropped during replay (0 for a clean log).
  size_t DroppedTailBytes() const { return dropped_tail_bytes_; }

  /// Durably appends one record: the line is written and flushed before
  /// returning, and the in-memory index is updated. On the first append
  /// after replaying a crashed log, the truncated tail is cut off first so
  /// the file stays a sequence of whole lines. Throws IoError when the
  /// write, flush, or (policy-dependent) fsync fails — a result the caller
  /// believes persisted MUST actually be on its way to disk.
  void Append(const CellKey& key, double achieved_prune_rate, double value);

  /// Appends an error record for `key`: the unit failed with
  /// `error_class` ("transient" or "permanent") after `attempts` tries.
  /// Replaces any previous record for the key in the index; a later
  /// successful Append for the same key supersedes it in turn.
  void AppendError(const CellKey& key, const std::string& error_class,
                   const std::string& error_message, int attempts);

  /// Rewrites the log to one record per live key (dropping superseded
  /// duplicates; keys whose latest record is still an error are kept as
  /// error records). Atomic: writes a temp file beside the log, fsyncs it,
  /// and renames over the original — a crash at any point leaves either
  /// the old or the new complete log. Also upgrades version-1 logs to the
  /// current format. Returns what was reclaimed.
  CompactStats Compact();

  /// Overrides the fsync policy (normally from SPARSIFY_STORE_FSYNC).
  void SetFsyncPolicy(FsyncPolicy policy);
  FsyncPolicy fsync_policy() const;

 private:
  void Replay();
  void EnsureWritable();  // opens out_, repairing the tail if needed
  void AppendLocked(StoredCell cell);
  void SyncLocked(bool closing);  // fsync per policy; throws IoError
  void CloseWriterLocked();       // flush + final sync + close fds

  void InsertLocked(StoredCell cell);

  mutable std::mutex mu_;
  std::string path_;
  std::ofstream out_;
  std::vector<StoredCell> cells_;
  std::unordered_map<std::string, size_t> index_;  // Canonical() -> cells_ idx
  size_t valid_bytes_ = 0;         // replayed prefix length incl. header
  size_t dropped_tail_bytes_ = 0;  // garbage after the valid prefix
  size_t log_records_ = 0;         // record lines in the log (incl. dupes)
  size_t error_cells_ = 0;         // keys whose latest record is an error
  bool file_exists_ = false;
  bool ends_with_newline_ = true;  // valid prefix ends in '\n'
  int lock_fd_ = -1;  // flock'd `path_`.lock descriptor (-1 off-POSIX)
  int sync_fd_ = -1;  // fsync descriptor for the log (ofstream hides its fd)
  FsyncPolicy fsync_policy_ = FsyncPolicy::kBatch;
  uint64_t appends_since_sync_ = 0;
};

}  // namespace sparsify

#endif  // SPARSIFY_STORE_RESULT_STORE_H_
