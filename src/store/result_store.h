// Append-only persistent store of completed experiment cells.
//
// One JSONL file: a self-describing header line followed by one flat JSON
// object per completed grid cell. Records are appended and flushed one at a
// time, so after a crash the log is a valid prefix plus at most one
// truncated tail line; replay detects and drops that tail (it is not
// fatal), while corruption anywhere before the tail is. See README.md in
// this directory for the format and the crash-recovery contract.
#ifndef SPARSIFY_STORE_RESULT_STORE_H_
#define SPARSIFY_STORE_RESULT_STORE_H_

#include <cstddef>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/store/cell_key.h"

namespace sparsify {

/// One replayed or appended record: the key plus the cell's results.
struct StoredCell {
  CellKey key;
  double achieved_prune_rate = 0.0;
  double value = 0.0;
};

/// Durable map from CellKey to results, backed by an append-only JSONL log.
///
/// Thread-safety: all methods are internally synchronized; Append is safe
/// to call from engine worker threads (the store is the single writer of
/// its file and serializes appends internally). Cross-process (and
/// cross-instance) exclusivity is ENFORCED: the constructor takes an
/// flock-based exclusive lock on `path`.lock before replaying and holds
/// it for the store's lifetime, so a second CLI invocation pointed at the
/// same --store directory fails fast with "store is locked by another
/// process" instead of interleaving JSONL appends.
class ResultStore {
 public:
  static constexpr int kFormatVersion = 1;

  /// Conventional file name inside a store directory.
  static std::string DefaultFileName() { return "results.jsonl"; }

  /// Opens (and replays) the log at `path`. A missing file is an empty
  /// store; the header is written on the first Append. Throws
  /// std::runtime_error when the file exists but is not a result-store log
  /// (bad header), is corrupt before the final line, or is already locked
  /// by another ResultStore instance or process.
  explicit ResultStore(std::string path);

  /// Releases the inter-process lock.
  ~ResultStore();

  /// Creates `dir` if needed and returns the conventional log path inside
  /// it (for callers that heap-allocate the store themselves).
  static std::string PathInDir(const std::string& dir);

  /// Creates `dir` if needed and opens `dir`/results.jsonl.
  static ResultStore OpenInDir(const std::string& dir);

  // Not movable (internal mutex); OpenInDir relies on guaranteed elision.
  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  const std::string& Path() const { return path_; }

  /// Number of distinct keys currently stored.
  size_t Size() const;

  bool Contains(const CellKey& key) const;

  std::optional<StoredCell> Lookup(const CellKey& key) const;

  /// All cells in first-seen order. A key appended twice keeps its original
  /// position with the latest values (last write wins on replay too).
  std::vector<StoredCell> Cells() const;

  /// Bytes of truncated tail dropped during replay (0 for a clean log).
  size_t DroppedTailBytes() const { return dropped_tail_bytes_; }

  /// Durably appends one record: the line is written and flushed before
  /// returning, and the in-memory index is updated. On the first append
  /// after replaying a crashed log, the truncated tail is cut off first so
  /// the file stays a sequence of whole lines.
  void Append(const CellKey& key, double achieved_prune_rate, double value);

 private:
  void Replay();
  void EnsureWritable();  // opens out_, repairing the tail if needed

  void InsertLocked(StoredCell cell);

  mutable std::mutex mu_;
  std::string path_;
  std::ofstream out_;
  std::vector<StoredCell> cells_;
  std::unordered_map<std::string, size_t> index_;  // Canonical() -> cells_ idx
  size_t valid_bytes_ = 0;         // replayed prefix length incl. header
  size_t dropped_tail_bytes_ = 0;  // garbage after the valid prefix
  bool file_exists_ = false;
  bool ends_with_newline_ = true;  // valid prefix ends in '\n'
  int lock_fd_ = -1;  // flock'd `path_`.lock descriptor (-1 off-POSIX)
};

}  // namespace sparsify

#endif  // SPARSIFY_STORE_RESULT_STORE_H_
