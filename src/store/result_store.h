// Append-only persistent store of completed experiment cells, shared by
// cooperating writer processes.
//
// The log is a base file (`results.jsonl`) plus zero or more per-writer
// segments (`log.<writer-id>.<n>.jsonl`), every file a self-describing
// header line followed by one flat JSON object per record. Records are
// appended and flushed one at a time, so after a crash each file is a
// valid prefix plus at most one truncated tail line; replay detects and
// drops that tail (it is not fatal), while corruption anywhere before the
// tail is. Format version 2 adds a CRC-32C to every record (interior
// bit-rot is detected, not silently replayed) and an error-record kind (a
// unit that failed is recorded under its CellKey so a resumed sweep knows
// to resubmit it). Version-1 logs are still replayed (their records carry
// no CRC).
//
// Multi-writer coordination is lease-based, not lock-based: each open
// writable store holds a heartbeat-renewed lease file (see util/lease.h)
// and appends only to its OWN segment chain, so concurrent processes
// never interleave writes in one file. Stale leases (dead pid or stopped
// heartbeat) are reaped at open: their torn segment tails are sealed and
// empty leftovers removed. Replay folds every file last-write-wins by
// CellKey; records from OTHER writers additionally never downgrade a
// success to an error (concurrent workers compute bit-identical values,
// so any surviving success is THE value). See README.md in this directory
// for the format, the lease state machine, and the crash-recovery
// contract.
#ifndef SPARSIFY_STORE_RESULT_STORE_H_
#define SPARSIFY_STORE_RESULT_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/store/cell_key.h"
#include "src/util/lease.h"

namespace sparsify {

/// One replayed or appended record: the key plus the cell's results, or —
/// when `is_error` — the failure that kept the cell from completing.
/// Error records occupy the same key space as results, so a later success
/// simply overwrites the error (last write wins).
struct StoredCell {
  CellKey key;
  double achieved_prune_rate = 0.0;
  double value = 0.0;
  bool is_error = false;
  std::string error_class;    // "transient" | "permanent" (empty for results)
  std::string error_message;  // sanitized what() of the failure
  int attempts = 0;           // tries consumed before giving up (errors only)
};

/// One shard-scheduler claim record: `writer` announced it is computing
/// chunk `chunk` of the work partition identified by `scope` (a hash of
/// the grid, so claims from incompatible grids are ignored). Claims live
/// in the claimant's own segment — no cross-process write contention —
/// and are dropped by Compact(): they only matter while a sweep runs.
struct StoredClaim {
  std::string writer;
  std::string scope;
  uint64_t chunk = 0;
};

/// What Compact() did: how many log lines and bytes the rewrite removed.
struct CompactStats {
  size_t records_before = 0;  // record lines in the log pre-compaction
  size_t records_after = 0;   // distinct keys written out
  uintmax_t bytes_before = 0;
  uintmax_t bytes_after = 0;
};

/// When appended records are fsync'd (flush-to-OS always happens; this
/// controls flush-to-disk). Default kBatch; the SPARSIFY_STORE_FSYNC
/// environment variable (none|batch|always) overrides it at open.
enum class FsyncPolicy {
  kNone,    // never fsync (fastest; a power loss may drop recent records)
  kBatch,   // fsync every ~32 appends and on clean close
  kAlways,  // fsync every append (torture-harness mode)
};

/// Open-time knobs. Environment overrides are applied on top at open:
/// SPARSIFY_LEASE_TTL (seconds) and SPARSIFY_STORE_SEGMENT_BYTES.
struct ResultStoreOptions {
  /// Heartbeat staleness horizon: a writer whose lease counter has not
  /// advanced for longer than this (or whose pid is dead) is stale, and
  /// its claims become stealable. Renewals happen every ttl/4.
  double lease_ttl_seconds = 30.0;
  /// Segment rotation threshold: the writer rotates to a fresh segment
  /// once the current file grows past this many bytes.
  uint64_t segment_bytes = 64ull << 20;
  /// Snapshot open for `export` / `ls` / `merge` inputs: no lease is
  /// taken, nothing in the directory is mutated, a live sweep's store can
  /// be inspected mid-run. Append/Compact throw on a read-only store.
  bool read_only = false;
};

/// Durable map from CellKey to results, backed by append-only JSONL logs.
///
/// Thread-safety: all methods are internally synchronized; Append is safe
/// to call from engine worker threads. Cross-process coordination is
/// COOPERATIVE: any number of writers may hold the same store directory
/// open, each appending to its own segment under a heartbeat lease.
/// Whole-store rewrites (Compact, ReplaceWithMerged) still demand
/// exclusivity and throw StoreLockHeldError while other writers are live.
class ResultStore {
 public:
  /// Current write version. Version 2 = CRC'd records + error kind;
  /// version 1 logs (no CRCs) are read-compatible.
  static constexpr int kFormatVersion = 2;

  /// Conventional file name inside a store directory.
  static std::string DefaultFileName() { return "results.jsonl"; }

  /// Opens (and replays) the log at `path` (the BASE file; its directory
  /// is scanned for peer segments). A missing file is an empty store; the
  /// header is written on the first Append. Throws StoreCorruptError when
  /// a log file exists but is not a result-store log (bad header), has a
  /// corrupt or checksum-failing record before the final line, or has an
  /// unsupported version; IoError on filesystem failures. (All derive
  /// from std::runtime_error.)
  explicit ResultStore(std::string path, ResultStoreOptions options = {});

  /// Flushes (per the fsync policy, best-effort), stops the heartbeat,
  /// and releases the lease.
  ~ResultStore();

  /// Creates `dir` if needed and returns the conventional log path inside
  /// it (for callers that heap-allocate the store themselves).
  static std::string PathInDir(const std::string& dir);

  /// Creates `dir` if needed and opens `dir`/results.jsonl.
  static ResultStore OpenInDir(const std::string& dir,
                               ResultStoreOptions options = {});

  // Not movable (internal mutex); OpenInDir relies on guaranteed elision.
  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  const std::string& Path() const { return path_; }

  /// This instance's unique writer id (empty on a read-only open).
  const std::string& WriterId() const { return writer_id_; }

  bool read_only() const { return options_.read_only; }

  /// Effective lease TTL (after the env override).
  double lease_ttl_seconds() const { return options_.lease_ttl_seconds; }

  /// Number of distinct keys currently stored (results AND error records).
  size_t Size() const;

  /// Number of keys whose latest record is an error.
  size_t ErrorCount() const;

  bool Contains(const CellKey& key) const;

  std::optional<StoredCell> Lookup(const CellKey& key) const;

  /// All cells in first-seen order. A key appended twice keeps its original
  /// position with the latest values (last write wins on replay too).
  std::vector<StoredCell> Cells() const;

  /// All claim records seen so far (replayed + own + refreshed), in
  /// observation order. Duplicates (re-claims, steals) are all kept: the
  /// scheduler judges liveness per claimant.
  std::vector<StoredClaim> Claims() const;

  /// Bytes of truncated tail dropped during replay (0 for a clean log).
  size_t DroppedTailBytes() const { return dropped_tail_bytes_; }

  /// Log files replayed at open (base + segments present).
  size_t SegmentCount() const { return replayed_files_; }

  /// Durably appends one record: the line is written and flushed before
  /// returning, and the in-memory index is updated. On the first append
  /// after replaying a crashed log, the truncated tail is cut off first so
  /// the file stays a sequence of whole lines. Throws IoError when the
  /// write, flush, or (policy-dependent) fsync fails — a result the caller
  /// believes persisted MUST actually be on its way to disk.
  void Append(const CellKey& key, double achieved_prune_rate, double value);

  /// Appends an error record for `key`: the unit failed with
  /// `error_class` ("transient" or "permanent") after `attempts` tries.
  /// Replaces any previous record for the key in the index; a later
  /// successful Append for the same key supersedes it in turn.
  void AppendError(const CellKey& key, const std::string& error_class,
                   const std::string& error_message, int attempts);

  /// Appends a claim record (this writer claims `chunk` of `scope`) to
  /// this writer's own segment, durably like Append.
  void AppendClaim(const std::string& scope, uint64_t chunk);

  /// Incrementally absorbs newly TERMINATED lines from peers' log files
  /// (other writers' segments, and the base file when this writer does
  /// not own it). A partially flushed final line stays pending — the peer
  /// may still be writing it. Corruption inside a peer file poisons that
  /// file (its remaining lines are ignored, a counter records it) instead
  /// of failing the live sweep. Returns the number of cell records
  /// absorbed.
  size_t RefreshPeers();

  /// True when `writer` should be treated as alive: it is this writer, or
  /// its lease file exists and its pid/heartbeat pass the staleness check
  /// (see util/lease.h). A released or reaped lease reads as dead.
  bool WriterAlive(const std::string& writer) const;

  /// Rewrites the store to one record per live key (dropping superseded
  /// duplicates and all claim records; keys whose latest record is still
  /// an error are kept as error records), folding every segment back into
  /// the base file. Requires this to be the ONLY live writer — throws
  /// StoreLockHeldError otherwise, so a running sweep can never have the
  /// log rewritten under it. Atomic: writes a temp file beside the log,
  /// fsyncs it, renames over the base, then unlinks the folded segments —
  /// a crash at any point replays to the same contents. Also upgrades
  /// version-1 logs to the current format. Returns what was reclaimed.
  CompactStats Compact();

  /// Atomically replaces the whole store with `cells` (the `merge`
  /// subcommand's commit step). Same exclusivity, atomicity, and
  /// segment-folding rules as Compact(); the temp file is
  /// `results.jsonl.merge.tmp.<pid>` so a killed merge leaves a
  /// recognizable orphan for the open-time sweep.
  void ReplaceWithMerged(std::vector<StoredCell> cells);

  /// Overrides the fsync policy (normally from SPARSIFY_STORE_FSYNC).
  void SetFsyncPolicy(FsyncPolicy policy);
  FsyncPolicy fsync_policy() const;

 private:
  // Per peer-file incremental replay state (RefreshPeers).
  struct PeerFile {
    size_t consumed = 0;   // offset one past the last absorbed line
    size_t line_no = 0;    // lines absorbed (0 = header not yet seen)
    bool poisoned = false; // corrupt record seen: file ignored from here
  };

  void AcquireLease();            // + reap stale writers (under dir flock)
  void ReapStaleWritersLocked();  // caller holds the lease-dir flock
  void RequireSoleWriter(const char* op);
  void StartHeartbeat();
  void StopHeartbeat();

  void Replay();
  // Replays one whole file. `own_base` = the base file this writer owns
  // (tail is recorded for repair); otherwise the tail stays pending in
  // `peers_`. Peer records obey the success-beats-error rule.
  void ReplayFile(const std::string& file, bool own_base, bool peer);
  // Parses `view` — the peer file's bytes from state.consumed on —
  // absorbing terminated lines only. `strict` (open-time) makes a corrupt
  // line fatal; otherwise (mid-run refresh) it poisons the file. Returns
  // cell records absorbed.
  size_t AbsorbPeerLines(const std::string& file, PeerFile& state,
                         const std::string& view, bool strict);

  void EnsureWritable();  // opens out_, repairing the tail if needed
  void RotateLocked();    // seals the current segment, opens the next
  std::string SegmentPath(uint64_t n) const;
  void AppendRecordLocked(const std::string& line);
  void AppendLocked(StoredCell cell);
  void SyncLocked(bool closing);  // fsync per policy; throws IoError
  void CloseWriterLocked();       // flush + final sync + close fds

  void InsertLocked(StoredCell cell, bool peer);
  // Shared commit step of Compact/ReplaceWithMerged: writes header +
  // `cells` to `tmp`, fsyncs, renames over the base, unlinks segments.
  void RewriteLogLocked(const std::vector<StoredCell>& cells,
                        const std::string& tmp, const char* fp_write,
                        const char* fp_rename);

  mutable std::mutex mu_;
  std::string path_;  // base log file; segments live beside it
  std::string dir_;   // parent directory of path_
  ResultStoreOptions options_;
  std::string writer_id_;  // empty on read-only opens
  // Atomic: the heartbeat thread copies it into renewals while Compact()
  // may be taking ownership under mu_.
  std::atomic<bool> owns_base_{false};
  std::ofstream out_;
  std::string append_path_;         // file out_ appends to (base or segment)
  uint64_t append_path_bytes_ = 0;  // its size (rotation threshold check)
  uint64_t next_segment_ = 0;       // suffix of this writer's next segment
  std::vector<StoredCell> cells_;
  std::unordered_map<std::string, size_t> index_;  // Canonical() -> cells_ idx
  std::vector<StoredClaim> claims_;
  std::map<std::string, PeerFile> peers_;  // peer log path -> replay state
  size_t replayed_files_ = 0;
  size_t valid_bytes_ = 0;         // replayed base prefix incl. header
  size_t dropped_tail_bytes_ = 0;  // garbage after a valid prefix
  size_t log_records_ = 0;         // record lines in the log (incl. dupes)
  size_t error_cells_ = 0;         // keys whose latest record is an error
  bool file_exists_ = false;       // base file existed at open
  bool ends_with_newline_ = true;  // base valid prefix ends in '\n'
  int sync_fd_ = -1;  // fsync descriptor for the log (ofstream hides its fd)
  FsyncPolicy fsync_policy_ = FsyncPolicy::kBatch;
  uint64_t appends_since_sync_ = 0;

  // Lease heartbeat machinery. The prober is mutable state shared by
  // WriterAlive callers; renew failures are absorbed (the next renewal
  // recreates the lease file — worst case a peer steals our claims and
  // recomputes bit-identical values).
  mutable lease::LivenessProber prober_;
  uint64_t heartbeat_ = 0;
  std::thread heartbeat_thread_;
  std::mutex heartbeat_mu_;
  std::condition_variable heartbeat_cv_;
  bool heartbeat_stop_ = false;
};

}  // namespace sparsify

#endif  // SPARSIFY_STORE_RESULT_STORE_H_
