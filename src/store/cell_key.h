// Deterministic identity of one grid cell of the paper's N-to-N matrix.
//
// A cell is one (dataset, sparsifier, prune_rate, run) evaluation of one
// metric under one master seed. Two processes that agree on a CellKey and
// the code revision compute bit-identical values (every cell's RNG stream
// derives from grid-shape-independent identities — see src/engine/
// README.md), which is what makes stored results safely reusable across
// runs AND relocatable across differently-shaped grids and shard workers.
#ifndef SPARSIFY_STORE_CELL_KEY_H_
#define SPARSIFY_STORE_CELL_KEY_H_

#include <cstdint>
#include <string>

namespace sparsify {

/// Revision tag of the numeric pipeline. Results stored under a different
/// revision never match a CellKey built by this binary, so stale values are
/// recomputed instead of reused. Bump whenever sparsifier, metric, or RNG
/// semantics change in a way that alters numeric output.
///
/// History:
///   r1  per-cell RNG streams: every cell's sparsify stream derived from
///       (master_seed, grid index).
///   r2  score-once engine: randomized sparsifiers draw their scoring
///       stream from (master_seed, sparsifier, run), shared across the
///       rate axis (BatchRunner::GroupSeed); KN calibrates on fixed keys;
///       RN/ER switched to priority/first-hit sampling with ER-w on
///       Horvitz-Thompson weights. Deterministic sparsifiers are
///       numerically unchanged, but their cells' values are keyed by the
///       same pipeline revision.
///   r3  sparsify-once multi-metric engine: sampled-metric RNG moved off
///       (master_seed, cell index) onto the grid-shape-independent
///       MetricSeed(master_seed, dataset, sparsifier, rate, run, metric)
///       stream (BatchRunner::MetricSeed), so a multi-metric sweep draws
///       bit-identical samples to single-metric sweeps of each of its
///       metrics; sampled betweenness additionally folds its Brandes
///       pivots in fixed batches of 32 (within-metric parallelism).
///       Deterministic (rng-free) metrics are numerically unchanged, but
///       their cells are keyed by the same pipeline revision; r2 cells
///       never satisfy r3 lookups.
///   r4  grid-shape-independent cell identity: the grid_index field was
///       dropped from CellKey (and from the store's canonical index key).
///       Since r3 every RNG stream already derives from stable names —
///       GroupSeed(master_seed, sparsifier, run) for scoring and
///       MetricSeed(master_seed, dataset, sparsifier, rate, run, metric)
///       for metric samples — so the same logical cell computes the SAME
///       bits at any grid position, and keying it by position only forced
///       spurious re-runs under reordered --algos/--rates lists (and
///       under shard workers launched with different grids). r4 values
///       are numerically identical to r3 values; the bump is conservative
///       identity retirement, because an r3 record cannot prove which
///       (possibly pre-r3-keyed) grid shape produced it.
inline constexpr char kResultCodeRev[] = "r4";

/// Key of one completed grid cell. Field semantics:
///   dataset      caller-chosen graph identity; the CLI encodes the scale
///                too ("ego-Facebook@0.2") because scaled stand-ins are
///                different graphs
///   sparsifier   short name (SparsifierNames)
///   prune_rate   requested rate of the cell's grid entry (0.0 for
///                fixed-output algorithms, mirroring ExpandGrid)
///   run          0-based repeat index
///   master_seed  sweep-level seed the per-cell streams derive from
///   metric       metric registry name
///   code_rev     numeric-pipeline revision (kResultCodeRev)
struct CellKey {
  std::string dataset;
  std::string sparsifier;
  double prune_rate = 0.0;
  int run = 0;
  uint64_t master_seed = 0;
  std::string metric;
  std::string code_rev = kResultCodeRev;

  /// Canonical string form used as the store's index key. Doubles are
  /// rendered with round-trip precision so equal keys stringify equally.
  std::string Canonical() const;

  bool operator==(const CellKey& other) const {
    return Canonical() == other.Canonical();
  }
};

}  // namespace sparsify

#endif  // SPARSIFY_STORE_CELL_KEY_H_
