#include "src/store/result_store.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <sstream>
#include <stdexcept>

#include "src/obs/counters.h"
#include "src/obs/trace.h"
#include "src/util/timer.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define SPARSIFY_STORE_HAS_FLOCK 1
#endif

namespace sparsify {

namespace {

// ---------------------------------------------------------------------------
// Minimal flat-JSON line codec. The store both writes and reads every line,
// so only the subset it emits must round-trip: one object per line, string
// keys, values that are strings or numbers. Doubles use %.17g, which
// round-trips every finite IEEE double (nan/inf are emitted bare and
// accepted back).
// ---------------------------------------------------------------------------

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

struct Field {
  bool is_string = false;
  std::string text;  // unescaped string, or the raw number token
};

using FieldMap = std::map<std::string, Field>;

// Parses one flat JSON object. Returns false on any syntax error (the
// caller decides whether that is a droppable tail or fatal corruption).
bool ParseFlatObject(const std::string& line, FieldMap* out) {
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  auto parse_string = [&](std::string* s) -> bool {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    while (i < line.size()) {
      char c = line[i];
      if (c == '"') {
        ++i;
        return true;
      }
      if (c == '\\') {
        if (i + 1 >= line.size()) return false;
        char esc = line[i + 1];
        i += 2;
        switch (esc) {
          case '"': s->push_back('"'); break;
          case '\\': s->push_back('\\'); break;
          case '/': s->push_back('/'); break;
          case 'n': s->push_back('\n'); break;
          case 't': s->push_back('\t'); break;
          case 'r': s->push_back('\r'); break;
          case 'b': s->push_back('\b'); break;
          case 'f': s->push_back('\f'); break;
          case 'u': {
            if (i + 4 > line.size()) return false;
            char* end = nullptr;
            std::string hex = line.substr(i, 4);
            long code = std::strtol(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4 || code > 0xff) return false;
            s->push_back(static_cast<char>(code));
            i += 4;
            break;
          }
          default:
            return false;
        }
      } else {
        s->push_back(c);
        ++i;
      }
    }
    return false;  // unterminated string
  };

  skip_ws();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (i >= line.size() || line[i] != ':') return false;
      ++i;
      skip_ws();
      Field field;
      if (i < line.size() && line[i] == '"') {
        field.is_string = true;
        if (!parse_string(&field.text)) return false;
      } else {
        // Number (or nan/inf/true/false/null): take the bare token.
        size_t start = i;
        while (i < line.size() && line[i] != ',' && line[i] != '}' &&
               line[i] != ' ' && line[i] != '\t') {
          ++i;
        }
        field.text = line.substr(start, i - start);
        if (field.text.empty()) return false;
      }
      (*out)[key] = std::move(field);
      skip_ws();
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      return false;
    }
  }
  skip_ws();
  return i == line.size();  // trailing garbage is a parse failure
}

bool GetString(const FieldMap& f, const std::string& key, std::string* out) {
  auto it = f.find(key);
  if (it == f.end() || !it->second.is_string) return false;
  *out = it->second.text;
  return true;
}

bool GetDouble(const FieldMap& f, const std::string& key, double* out) {
  auto it = f.find(key);
  if (it == f.end() || it->second.is_string) return false;
  char* end = nullptr;
  *out = std::strtod(it->second.text.c_str(), &end);
  return end == it->second.text.c_str() + it->second.text.size();
}

bool GetUint64(const FieldMap& f, const std::string& key, uint64_t* out) {
  auto it = f.find(key);
  if (it == f.end() || it->second.is_string) return false;
  char* end = nullptr;
  *out = std::strtoull(it->second.text.c_str(), &end, 10);
  return end == it->second.text.c_str() + it->second.text.size();
}

bool GetInt(const FieldMap& f, const std::string& key, int* out) {
  auto it = f.find(key);
  if (it == f.end() || it->second.is_string) return false;
  char* end = nullptr;
  long v = std::strtol(it->second.text.c_str(), &end, 10);
  if (end != it->second.text.c_str() + it->second.text.size()) return false;
  *out = static_cast<int>(v);
  return true;
}

constexpr char kFormatName[] = "sparsify-result-store";

std::string SerializeHeader() {
  std::string line = "{\"format\":\"";
  line += kFormatName;
  line += "\",\"version\":" + std::to_string(ResultStore::kFormatVersion) +
          "}\n";
  return line;
}

std::string SerializeRecord(const StoredCell& cell) {
  std::string line = "{\"dataset\":";
  AppendEscaped(&line, cell.key.dataset);
  line += ",\"sparsifier\":";
  AppendEscaped(&line, cell.key.sparsifier);
  line += ",\"prune_rate\":" + FormatDouble(cell.key.prune_rate);
  line += ",\"run\":" + std::to_string(cell.key.run);
  line += ",\"grid_index\":" + std::to_string(cell.key.grid_index);
  line += ",\"master_seed\":" + std::to_string(cell.key.master_seed);
  line += ",\"metric\":";
  AppendEscaped(&line, cell.key.metric);
  line += ",\"code_rev\":";
  AppendEscaped(&line, cell.key.code_rev);
  line += ",\"achieved_prune_rate\":" + FormatDouble(cell.achieved_prune_rate);
  line += ",\"value\":" + FormatDouble(cell.value);
  line += "}\n";
  return line;
}

bool ParseRecord(const std::string& line, StoredCell* cell) {
  FieldMap fields;
  if (!ParseFlatObject(line, &fields)) return false;
  return GetString(fields, "dataset", &cell->key.dataset) &&
         GetString(fields, "sparsifier", &cell->key.sparsifier) &&
         GetDouble(fields, "prune_rate", &cell->key.prune_rate) &&
         GetInt(fields, "run", &cell->key.run) &&
         GetUint64(fields, "grid_index", &cell->key.grid_index) &&
         GetUint64(fields, "master_seed", &cell->key.master_seed) &&
         GetString(fields, "metric", &cell->key.metric) &&
         GetString(fields, "code_rev", &cell->key.code_rev) &&
         GetDouble(fields, "achieved_prune_rate",
                   &cell->achieved_prune_rate) &&
         GetDouble(fields, "value", &cell->value);
}

bool ParseHeader(const std::string& line) {
  FieldMap fields;
  if (!ParseFlatObject(line, &fields)) return false;
  std::string format;
  int version = 0;
  if (!GetString(fields, "format", &format) ||
      !GetInt(fields, "version", &version)) {
    return false;
  }
  if (format != kFormatName) return false;
  if (version != ResultStore::kFormatVersion) {
    throw std::runtime_error("result store: unsupported version " +
                             std::to_string(version));
  }
  return true;
}

}  // namespace

std::string CellKey::Canonical() const {
  // '\x1f' (unit separator) cannot appear in the names the framework uses,
  // so joined fields never collide.
  std::string s;
  s.reserve(dataset.size() + sparsifier.size() + metric.size() +
            code_rev.size() + 48);
  s += dataset;
  s.push_back('\x1f');
  s += sparsifier;
  s.push_back('\x1f');
  s += FormatDouble(prune_rate);
  s.push_back('\x1f');
  s += std::to_string(run);
  s.push_back('\x1f');
  s += std::to_string(grid_index);
  s.push_back('\x1f');
  s += std::to_string(master_seed);
  s.push_back('\x1f');
  s += metric;
  s.push_back('\x1f');
  s += code_rev;
  return s;
}

ResultStore::ResultStore(std::string path) : path_(std::move(path)) {
#ifdef SPARSIFY_STORE_HAS_FLOCK
  // Exclusive inter-process lock, taken before Replay so a concurrent
  // writer can neither corrupt what we read nor interleave later appends.
  // flock conflicts between two descriptors even within one process, so
  // double-opening a store in tests (or one binary) fails the same way.
  // The lock lives on a sidecar `.lock` file: locking the log itself
  // would pin an inode that tail repair (resize_file) may replace.
  const std::string lock_path = path_ + ".lock";
  lock_fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (lock_fd_ < 0) {
    throw std::runtime_error("result store: cannot open lock file " +
                             lock_path);
  }
  if (::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    ::close(lock_fd_);
    lock_fd_ = -1;
    throw std::runtime_error("result store: " + path_ +
                             " is locked by another process");
  }
#endif
  try {
    Replay();
  } catch (...) {
    // The destructor never runs when the constructor throws: release the
    // lock here or a failed open would wedge the path for the process.
#ifdef SPARSIFY_STORE_HAS_FLOCK
    if (lock_fd_ >= 0) {
      ::flock(lock_fd_, LOCK_UN);
      ::close(lock_fd_);
      lock_fd_ = -1;
    }
#endif
    throw;
  }
}

ResultStore::~ResultStore() {
#ifdef SPARSIFY_STORE_HAS_FLOCK
  if (lock_fd_ >= 0) {
    ::flock(lock_fd_, LOCK_UN);
    ::close(lock_fd_);
  }
#endif
}

std::string ResultStore::PathInDir(const std::string& dir) {
  std::filesystem::create_directories(dir);
  return (std::filesystem::path(dir) / DefaultFileName()).string();
}

ResultStore ResultStore::OpenInDir(const std::string& dir) {
  return ResultStore(PathInDir(dir));
}

void ResultStore::Replay() {
  TRACE_SPAN(span, "store_replay");
  if (span.active()) span.Detail(path_);
  // Records on every exit path (multiple returns, throws on corruption).
  struct ReplayObs {
    Timer timer;
    ~ReplayObs() {
      static obs::Histogram& replay_ns =
          obs::GetHistogram("store.replay_ns");
      replay_ns.Record(static_cast<uint64_t>(timer.Seconds() * 1e9));
    }
  } replay_obs;

  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    file_exists_ = false;
    return;  // missing file = empty store; header written on first Append
  }
  file_exists_ = true;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string content = buf.str();
  if (content.empty()) return;  // empty file: treat like a fresh store

  size_t pos = 0;
  size_t line_no = 0;
  while (pos < content.size()) {
    size_t nl = content.find('\n', pos);
    bool terminated = nl != std::string::npos;
    size_t end = terminated ? nl : content.size();
    std::string line = content.substr(pos, end - pos);
    bool is_tail = !terminated;

    bool ok;
    StoredCell cell;
    if (line_no == 0) {
      ok = ParseHeader(line);
      if (!ok && !is_tail) {
        throw std::runtime_error("result store: " + path_ +
                                 " is not a result-store log (bad header)");
      }
    } else {
      ok = ParseRecord(line, &cell);
      if (!ok && !is_tail) {
        throw std::runtime_error(
            "result store: corrupt record at line " +
            std::to_string(line_no + 1) + " of " + path_);
      }
      if (ok) InsertLocked(std::move(cell));
    }
    if (!ok) {
      // Unterminated and unparseable: the torn tail of a crashed append.
      // Everything before it is intact; the tail is cut off before the
      // next append.
      dropped_tail_bytes_ = content.size() - pos;
      ends_with_newline_ = true;
      return;
    }
    valid_bytes_ = terminated ? end + 1 : end;
    ends_with_newline_ = terminated;
    pos = end + (terminated ? 1 : 0);
    ++line_no;
  }
}

size_t ResultStore::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

bool ResultStore::Contains(const CellKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.contains(key.Canonical());
}

std::optional<StoredCell> ResultStore::Lookup(const CellKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key.Canonical());
  if (it == index_.end()) return std::nullopt;
  return cells_[it->second];
}

std::vector<StoredCell> ResultStore::Cells() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_;
}

void ResultStore::InsertLocked(StoredCell cell) {
  std::string canonical = cell.key.Canonical();
  auto it = index_.find(canonical);
  if (it != index_.end()) {
    cells_[it->second] = std::move(cell);  // last write wins, keeps position
  } else {
    index_.emplace(std::move(canonical), cells_.size());
    cells_.push_back(std::move(cell));
  }
}

void ResultStore::EnsureWritable() {
  if (out_.is_open()) return;
  if (file_exists_ && dropped_tail_bytes_ > 0) {
    // Cut the torn tail so the file returns to whole-line form.
    std::filesystem::resize_file(path_, valid_bytes_);
    dropped_tail_bytes_ = 0;
  }
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) {
    throw std::runtime_error("result store: cannot open " + path_ +
                             " for append");
  }
  if (!file_exists_ || valid_bytes_ == 0) {
    out_ << SerializeHeader();
  } else if (!ends_with_newline_) {
    // Valid final record that lost only its newline in a crash.
    out_ << '\n';
  }
  ends_with_newline_ = true;
  file_exists_ = true;
}

void ResultStore::Append(const CellKey& key, double achieved_prune_rate,
                         double value) {
  // Append latency includes the lock wait: contention from many workers
  // appending at once shows up here, which is what the histogram is for.
  static obs::Counter& appends = obs::GetCounter("store.appends");
  static obs::Histogram& append_ns = obs::GetHistogram("store.append_ns");
  Timer append_timer;
  std::lock_guard<std::mutex> lock(mu_);
  EnsureWritable();
  StoredCell cell;
  cell.key = key;
  cell.achieved_prune_rate = achieved_prune_rate;
  cell.value = value;
  out_ << SerializeRecord(cell);
  out_.flush();
  if (!out_) {
    throw std::runtime_error("result store: write failure on " + path_);
  }
  InsertLocked(std::move(cell));
  appends.Add();
  append_ns.Record(static_cast<uint64_t>(append_timer.Seconds() * 1e9));
}

}  // namespace sparsify
