#include "src/store/result_store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/obs/counters.h"
#include "src/obs/trace.h"
#include "src/util/crc32c.h"
#include "src/util/errors.h"
#include "src/util/failpoint.h"
#include "src/util/timer.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <unistd.h>
#define SPARSIFY_STORE_HAS_POSIX 1
#endif

namespace sparsify {

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Minimal flat-JSON line codec. The store both writes and reads every line,
// so only the subset it emits must round-trip: one object per line, string
// keys, values that are strings or numbers. Doubles use %.17g, which
// round-trips every finite IEEE double (nan/inf are emitted bare and
// accepted back).
// ---------------------------------------------------------------------------

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

struct Field {
  bool is_string = false;
  std::string text;  // unescaped string, or the raw number token
};

using FieldMap = std::map<std::string, Field>;

// Parses one flat JSON object. Returns false on any syntax error (the
// caller decides whether that is a droppable tail or fatal corruption).
bool ParseFlatObject(const std::string& line, FieldMap* out) {
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  auto parse_string = [&](std::string* s) -> bool {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    while (i < line.size()) {
      char c = line[i];
      if (c == '"') {
        ++i;
        return true;
      }
      if (c == '\\') {
        if (i + 1 >= line.size()) return false;
        char esc = line[i + 1];
        i += 2;
        switch (esc) {
          case '"': s->push_back('"'); break;
          case '\\': s->push_back('\\'); break;
          case '/': s->push_back('/'); break;
          case 'n': s->push_back('\n'); break;
          case 't': s->push_back('\t'); break;
          case 'r': s->push_back('\r'); break;
          case 'b': s->push_back('\b'); break;
          case 'f': s->push_back('\f'); break;
          case 'u': {
            if (i + 4 > line.size()) return false;
            char* end = nullptr;
            std::string hex = line.substr(i, 4);
            long code = std::strtol(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4 || code > 0xff) return false;
            s->push_back(static_cast<char>(code));
            i += 4;
            break;
          }
          default:
            return false;
        }
      } else {
        s->push_back(c);
        ++i;
      }
    }
    return false;  // unterminated string
  };

  skip_ws();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (i >= line.size() || line[i] != ':') return false;
      ++i;
      skip_ws();
      Field field;
      if (i < line.size() && line[i] == '"') {
        field.is_string = true;
        if (!parse_string(&field.text)) return false;
      } else {
        // Number (or nan/inf/true/false/null): take the bare token.
        size_t start = i;
        while (i < line.size() && line[i] != ',' && line[i] != '}' &&
               line[i] != ' ' && line[i] != '\t') {
          ++i;
        }
        field.text = line.substr(start, i - start);
        if (field.text.empty()) return false;
      }
      (*out)[key] = std::move(field);
      skip_ws();
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      return false;
    }
  }
  skip_ws();
  return i == line.size();  // trailing garbage is a parse failure
}

bool GetString(const FieldMap& f, const std::string& key, std::string* out) {
  auto it = f.find(key);
  if (it == f.end() || !it->second.is_string) return false;
  *out = it->second.text;
  return true;
}

bool GetDouble(const FieldMap& f, const std::string& key, double* out) {
  auto it = f.find(key);
  if (it == f.end() || it->second.is_string) return false;
  char* end = nullptr;
  *out = std::strtod(it->second.text.c_str(), &end);
  return end == it->second.text.c_str() + it->second.text.size();
}

bool GetUint64(const FieldMap& f, const std::string& key, uint64_t* out) {
  auto it = f.find(key);
  if (it == f.end() || it->second.is_string) return false;
  char* end = nullptr;
  *out = std::strtoull(it->second.text.c_str(), &end, 10);
  return end == it->second.text.c_str() + it->second.text.size();
}

bool GetInt(const FieldMap& f, const std::string& key, int* out) {
  auto it = f.find(key);
  if (it == f.end() || it->second.is_string) return false;
  char* end = nullptr;
  long v = std::strtol(it->second.text.c_str(), &end, 10);
  if (end != it->second.text.c_str() + it->second.text.size()) return false;
  *out = static_cast<int>(v);
  return true;
}

constexpr char kFormatName[] = "sparsify-result-store";

// The record-final checksum field. The CRC covers the serialized record
// WITHOUT this suffix (i.e. the bytes up to the suffix, plus the closing
// brace), so writer and reader agree without re-serializing.
constexpr char kCrcSuffix[] = ",\"crc32c\":\"";
constexpr size_t kCrcSuffixLen = sizeof(kCrcSuffix) - 1;
constexpr size_t kCrcHexLen = 8;

std::string SerializeHeader(int version) {
  std::string line = "{\"format\":\"";
  line += kFormatName;
  line += "\",\"version\":" + std::to_string(version) + "}\n";
  return line;
}

// Takes a serialized record "{...}" (no newline), returns it with the
// checksum spliced in before the closing brace and a trailing newline:
// {...,"crc32c":"xxxxxxxx"}\n
std::string WithCrc(std::string record) {
  const uint32_t crc = Crc32c(record);
  char hex[kCrcHexLen + 1];
  std::snprintf(hex, sizeof(hex), "%08x", crc);
  record.pop_back();  // the '}' the CRC nonetheless covers
  record += kCrcSuffix;
  record += hex;
  record += "\"}\n";
  return record;
}

enum class CrcStatus {
  kOk,      // checksum present and correct
  kLegacy,  // no checksum field (version-1 record): accepted
  kBad,     // checksum present but wrong, or malformed
};

CrcStatus CheckLineCrc(const std::string& line) {
  const size_t p = line.rfind(kCrcSuffix);
  if (p == std::string::npos) return CrcStatus::kLegacy;
  // The suffix must be exactly the final field: ,"crc32c":"XXXXXXXX"}
  if (p + kCrcSuffixLen + kCrcHexLen + 2 != line.size() ||
      line.compare(line.size() - 2, 2, "\"}") != 0) {
    return CrcStatus::kBad;
  }
  uint32_t want = 0;
  for (size_t i = 0; i < kCrcHexLen; ++i) {
    const char c = line[p + kCrcSuffixLen + i];
    uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint32_t>(c - 'a' + 10);
    } else {
      return CrcStatus::kBad;  // writer emits lowercase hex only
    }
    want = (want << 4) | digit;
  }
  // Covered bytes: everything before the suffix, re-closed.
  std::string covered = line.substr(0, p);
  covered += '}';
  return Crc32c(covered) == want ? CrcStatus::kOk : CrcStatus::kBad;
}

// Record body without checksum or newline; WithCrc finishes the line.
std::string SerializeRecordBody(const StoredCell& cell) {
  std::string line = "{\"dataset\":";
  AppendEscaped(&line, cell.key.dataset);
  line += ",\"sparsifier\":";
  AppendEscaped(&line, cell.key.sparsifier);
  line += ",\"prune_rate\":" + FormatDouble(cell.key.prune_rate);
  line += ",\"run\":" + std::to_string(cell.key.run);
  line += ",\"master_seed\":" + std::to_string(cell.key.master_seed);
  line += ",\"metric\":";
  AppendEscaped(&line, cell.key.metric);
  line += ",\"code_rev\":";
  AppendEscaped(&line, cell.key.code_rev);
  if (cell.is_error) {
    line += ",\"kind\":\"error\",\"error_class\":";
    AppendEscaped(&line, cell.error_class);
    line += ",\"error\":";
    AppendEscaped(&line, cell.error_message);
    line += ",\"attempts\":" + std::to_string(cell.attempts);
  } else {
    line +=
        ",\"achieved_prune_rate\":" + FormatDouble(cell.achieved_prune_rate);
    line += ",\"value\":" + FormatDouble(cell.value);
  }
  line += "}";
  return line;
}

std::string SerializeRecord(const StoredCell& cell) {
  return WithCrc(SerializeRecordBody(cell));
}

std::string SerializeClaim(const StoredClaim& claim) {
  std::string line = "{\"kind\":\"claim\",\"writer\":";
  AppendEscaped(&line, claim.writer);
  line += ",\"scope\":";
  AppendEscaped(&line, claim.scope);
  line += ",\"chunk\":" + std::to_string(claim.chunk);
  line += "}";
  return WithCrc(line);
}

enum class LineKind { kCell, kClaim, kBad };

// Parses a record line into either a cell or a claim. grid_index, an r3
// key component dropped in r4, parses as an ignored extra field, so
// pre-r4 logs still replay (their records simply never match r4 keys).
LineKind ParseLine(const std::string& line, StoredCell* cell,
                   StoredClaim* claim) {
  FieldMap fields;
  if (!ParseFlatObject(line, &fields)) return LineKind::kBad;
  std::string kind;
  const bool has_kind = GetString(fields, "kind", &kind);
  if (has_kind && kind == "claim") {
    if (!GetString(fields, "writer", &claim->writer) ||
        !GetString(fields, "scope", &claim->scope) ||
        !GetUint64(fields, "chunk", &claim->chunk)) {
      return LineKind::kBad;
    }
    return LineKind::kClaim;
  }
  if (!GetString(fields, "dataset", &cell->key.dataset) ||
      !GetString(fields, "sparsifier", &cell->key.sparsifier) ||
      !GetDouble(fields, "prune_rate", &cell->key.prune_rate) ||
      !GetInt(fields, "run", &cell->key.run) ||
      !GetUint64(fields, "master_seed", &cell->key.master_seed) ||
      !GetString(fields, "metric", &cell->key.metric) ||
      !GetString(fields, "code_rev", &cell->key.code_rev)) {
    return LineKind::kBad;
  }
  if (has_kind) {
    if (kind != "error") return LineKind::kBad;  // unknown record kind
    cell->is_error = true;
    if (!GetString(fields, "error_class", &cell->error_class) ||
        !GetString(fields, "error", &cell->error_message)) {
      return LineKind::kBad;
    }
    GetInt(fields, "attempts", &cell->attempts);  // optional
    return LineKind::kCell;
  }
  cell->is_error = false;
  return GetDouble(fields, "achieved_prune_rate",
                   &cell->achieved_prune_rate) &&
                 GetDouble(fields, "value", &cell->value)
             ? LineKind::kCell
             : LineKind::kBad;
}

bool ParseHeader(const std::string& line) {
  FieldMap fields;
  if (!ParseFlatObject(line, &fields)) return false;
  std::string format;
  int version = 0;
  if (!GetString(fields, "format", &format) ||
      !GetInt(fields, "version", &version)) {
    return false;
  }
  if (format != kFormatName) return false;
  // Version 1 (no record CRCs) is read- and append-compatible; anything
  // newer than this binary writes is not.
  if (version < 1 || version > ResultStore::kFormatVersion) {
    throw StoreCorruptError("result store: unsupported version " +
                            std::to_string(version));
  }
  return true;
}

FsyncPolicy FsyncPolicyFromEnv(FsyncPolicy fallback) {
  const char* env = std::getenv("SPARSIFY_STORE_FSYNC");
  if (env == nullptr || *env == '\0') return fallback;
  const std::string v = env;
  if (v == "none") return FsyncPolicy::kNone;
  if (v == "batch") return FsyncPolicy::kBatch;
  if (v == "always") return FsyncPolicy::kAlways;
  throw std::invalid_argument(
      "SPARSIFY_STORE_FSYNC: expected none|batch|always, got '" + v + "'");
}

uint64_t SegmentBytesFromEnv(uint64_t fallback) {
  const char* env = std::getenv("SPARSIFY_STORE_SEGMENT_BYTES");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || v == 0) {
    throw std::invalid_argument(
        std::string("SPARSIFY_STORE_SEGMENT_BYTES: expected bytes > 0, "
                    "got '") +
        env + "'");
  }
  return v;
}

// Appends between fsyncs under FsyncPolicy::kBatch. Small enough that a
// power loss costs at most one batch of ~200-byte records, large enough
// that fsync latency amortizes out of the append path.
constexpr uint64_t kFsyncBatchInterval = 32;

long OwnPid() {
#ifdef SPARSIFY_STORE_HAS_POSIX
  return static_cast<long>(::getpid());
#else
  return 0;
#endif
}

// True when `pid` is provably dead on this host. Conservative: any
// answer other than ESRCH (including EPERM) counts as alive.
bool PidProvablyDead(long pid) {
#ifdef SPARSIFY_STORE_HAS_POSIX
  if (pid <= 0) return true;
  return ::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH;
#else
  (void)pid;
  return true;  // no liveness oracle: treat orphans as dead
#endif
}

// Segment file name pattern: log.<writer>.<n>.jsonl. Returns false for
// anything else in the directory.
bool ParseSegmentName(const std::string& name, std::string* writer,
                      uint64_t* n) {
  if (name.rfind("log.", 0) != 0) return false;
  if (name.size() < 11 || name.compare(name.size() - 6, 6, ".jsonl") != 0) {
    return false;
  }
  const std::string middle = name.substr(4, name.size() - 10);
  const size_t dot = middle.rfind('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 >= middle.size()) {
    return false;
  }
  const std::string num = middle.substr(dot + 1);
  char* end = nullptr;
  const unsigned long long v = std::strtoull(num.c_str(), &end, 10);
  if (end != num.c_str() + num.size()) return false;
  *writer = middle.substr(0, dot);
  *n = v;
  return true;
}

// All segment files in `dir`, sorted by (writer, n) for deterministic
// replay order.
std::vector<std::pair<std::pair<std::string, uint64_t>, std::string>>
ListSegments(const std::string& dir) {
  std::vector<std::pair<std::pair<std::string, uint64_t>, std::string>> segs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::string writer;
    uint64_t n = 0;
    if (ParseSegmentName(entry.path().filename().string(), &writer, &n)) {
      segs.push_back({{writer, n}, entry.path().string()});
    }
  }
  std::sort(segs.begin(), segs.end());
  return segs;
}

// Trailing ".<pid>" of an orphan temp-file name; 0 when absent/garbled.
long PidSuffixOf(const std::string& name) {
  const size_t dot = name.rfind('.');
  if (dot == std::string::npos || dot + 1 >= name.size()) return 0;
  const std::string num = name.substr(dot + 1);
  char* end = nullptr;
  const long v = std::strtol(num.c_str(), &end, 10);
  if (end != num.c_str() + num.size()) return 0;
  return v;
}

// Truncates the torn (unterminated or checksum-torn) tail of a dead
// writer's segment so the file returns to whole-line form — the "sealed"
// state. Interior corruption is left alone: sealing must never mask bit
// rot that replay is supposed to report.
void SealSegmentFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  size_t pos = 0;
  size_t line_no = 0;
  size_t valid = 0;
  while (pos < content.size()) {
    const size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) break;  // torn tail: cut at `valid`
    const std::string line = content.substr(pos, nl - pos);
    bool ok;
    if (line_no == 0) {
      try {
        ok = ParseHeader(line);
      } catch (const StoreCorruptError&) {
        ok = false;
      }
    } else {
      StoredCell cell;
      StoredClaim claim;
      ok = ParseLine(line, &cell, &claim) != LineKind::kBad &&
           CheckLineCrc(line) != CrcStatus::kBad;
    }
    if (!ok) return;  // terminated bad line: not a torn tail, leave it
    pos = nl + 1;
    valid = pos;
    ++line_no;
  }
  if (valid < content.size()) {
    std::error_code ec;
    fs::resize_file(path, valid, ec);
  }
}

// True when `path` holds nothing but (at most) a header line — the
// leftover of a writer killed right after segment rotation.
bool SegmentIsEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  if (content.empty()) return true;
  const size_t nl = content.find('\n');
  if (nl == std::string::npos) return true;  // torn header only
  if (nl + 1 != content.size()) return false;
  try {
    return ParseHeader(content.substr(0, nl));
  } catch (const StoreCorruptError&) {
    return false;
  }
}

}  // namespace

std::string CellKey::Canonical() const {
  // '\x1f' (unit separator) cannot appear in the names the framework uses,
  // so joined fields never collide.
  std::string s;
  s.reserve(dataset.size() + sparsifier.size() + metric.size() +
            code_rev.size() + 40);
  s += dataset;
  s.push_back('\x1f');
  s += sparsifier;
  s.push_back('\x1f');
  s += FormatDouble(prune_rate);
  s.push_back('\x1f');
  s += std::to_string(run);
  s.push_back('\x1f');
  s += std::to_string(master_seed);
  s.push_back('\x1f');
  s += metric;
  s.push_back('\x1f');
  s += code_rev;
  return s;
}

ResultStore::ResultStore(std::string path, ResultStoreOptions options)
    : path_(std::move(path)), options_(options) {
  const fs::path p(path_);
  dir_ = p.has_parent_path() ? p.parent_path().string() : std::string(".");
  fsync_policy_ = FsyncPolicyFromEnv(FsyncPolicy::kBatch);
  options_.lease_ttl_seconds =
      lease::TtlFromEnv(options_.lease_ttl_seconds);
  options_.segment_bytes = SegmentBytesFromEnv(options_.segment_bytes);
  SPARSIFY_FAILPOINT("store.lock");
  if (!options_.read_only) {
    writer_id_ = lease::NewWriterId();
    AcquireLease();
  }
  try {
    Replay();
    if (!options_.read_only) StartHeartbeat();
  } catch (...) {
    // The destructor never runs when the constructor throws: drop the
    // lease here or a failed open would leave a ghost writer for the
    // lease TTL.
    if (!options_.read_only) {
      lease::RemoveLease(dir_, writer_id_);
    }
    throw;
  }
}

ResultStore::~ResultStore() {
  StopHeartbeat();
  // Best-effort final flush/sync: the destructor must not throw, but a
  // clean close should leave nothing in the page cache under kBatch.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (out_.is_open()) out_.flush();
#ifdef SPARSIFY_STORE_HAS_POSIX
    if (sync_fd_ >= 0) {
      if (fsync_policy_ != FsyncPolicy::kNone && appends_since_sync_ > 0) {
        ::fsync(sync_fd_);
      }
      ::close(sync_fd_);
      sync_fd_ = -1;
    }
#endif
  }
  if (!options_.read_only && !writer_id_.empty()) {
    // Release the lease so peers see this writer as dead immediately
    // (a leaked lease file is reaped as stale by the next acquirer).
    lease::RemoveLease(dir_, writer_id_);
  }
}

std::string ResultStore::PathInDir(const std::string& dir) {
  std::filesystem::create_directories(dir);
  return (std::filesystem::path(dir) / DefaultFileName()).string();
}

ResultStore ResultStore::OpenInDir(const std::string& dir,
                                   ResultStoreOptions options) {
  return ResultStore(PathInDir(dir), options);
}

void ResultStore::AcquireLease() {
  SPARSIFY_FAILPOINT("store.lease.acquire");
  lease::LeaseDirLock dir_lock(dir_);
  ReapStaleWritersLocked();
  // Base-file ownership: exactly one live writer appends to the base
  // `results.jsonl` (so a single-process store looks exactly like it
  // always did); everyone else appends to their own segment chain. First
  // live acquirer without a competing owner takes it.
  owns_base_ = true;
  for (const lease::LeaseInfo& info : lease::ListLeases(dir_)) {
    if (info.writer != writer_id_ && info.owns_base) {
      owns_base_ = false;
      break;
    }
  }
  lease::LeaseInfo mine;
  mine.writer = writer_id_;
  mine.pid = OwnPid();
  mine.heartbeat = 0;
  mine.ttl_seconds = options_.lease_ttl_seconds;
  mine.owns_base = owns_base_;
  lease::WriteLease(dir_, mine);
}

void ResultStore::ReapStaleWritersLocked() {
  static obs::Counter& reaped = obs::GetCounter("store.reaped_leases");
  const std::string base_name = fs::path(path_).filename().string();
  // Dead writers first: seal their newest segment (truncate a torn tail),
  // drop segments that never got past their header, drop the lease.
  for (const lease::LeaseInfo& info : lease::ListLeases(dir_)) {
    if (info.writer == writer_id_) continue;
    if (!PidProvablyDead(info.pid)) continue;
    std::vector<std::pair<uint64_t, std::string>> own_segs;
    for (const auto& [key, seg_path] : ListSegments(dir_)) {
      if (key.first == info.writer) own_segs.push_back({key.second, seg_path});
    }
    if (!own_segs.empty()) {
      SealSegmentFile(own_segs.back().second);
    }
    for (const auto& [n, seg_path] : own_segs) {
      if (SegmentIsEmpty(seg_path)) {
        std::error_code ec;
        fs::remove(seg_path, ec);
      }
    }
    // A dead base owner's torn base tail stays: the next base owner
    // repairs it in EnsureWritable, exactly like the single-writer store
    // always has.
    lease::RemoveLease(dir_, info.writer);
    reaped.Add();
  }
  // Orphan temp files from killed Compact()/merge commits: the rename
  // never happened, the log itself is intact, the temp is garbage. Only
  // provably-dead owners are swept — a live process may be mid-commit.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    const bool is_tmp =
        name.rfind(base_name + ".compact.tmp", 0) == 0 ||
        name.rfind(base_name + ".merge.tmp", 0) == 0;
    if (!is_tmp) continue;
    const long pid = PidSuffixOf(name);
    if (pid == OwnPid()) continue;
    if (pid == 0 || PidProvablyDead(pid)) {
      std::error_code rec;
      fs::remove(entry.path(), rec);
    }
  }
}

void ResultStore::RequireSoleWriter(const char* op) {
  // Caller holds the lease-dir flock. Reap first so a crashed worker
  // never blocks maintenance forever, then demand exclusivity.
  ReapStaleWritersLocked();
  for (const lease::LeaseInfo& info : lease::ListLeases(dir_)) {
    if (info.writer == writer_id_) continue;
    if (prober_.Alive(info)) {
      throw StoreLockHeldError(std::string("result store: ") + path_ +
                               " has other live writers (" + op +
                               " needs exclusive access)");
    }
  }
}

void ResultStore::StartHeartbeat() {
  heartbeat_stop_ = false;
  heartbeat_thread_ = std::thread([this] {
    static obs::Counter& renew_failures =
        obs::GetCounter("store.lease_renew_failures");
    const auto interval = std::chrono::duration<double>(
        std::max(0.05, options_.lease_ttl_seconds / 4.0));
    std::unique_lock<std::mutex> lk(heartbeat_mu_);
    while (!heartbeat_stop_) {
      if (heartbeat_cv_.wait_for(lk, interval,
                                 [this] { return heartbeat_stop_; })) {
        break;
      }
      lease::LeaseInfo info;
      info.writer = writer_id_;
      info.pid = OwnPid();
      info.heartbeat = ++heartbeat_;
      info.ttl_seconds = options_.lease_ttl_seconds;
      info.owns_base = owns_base_;
      try {
        // Recreates the lease file if a peer reaped it while this
        // process was wedged; worst case our claims were stolen and the
        // thief recomputed bit-identical values.
        lease::WriteLease(dir_, info);
      } catch (...) {
        renew_failures.Add();
      }
    }
  });
}

void ResultStore::StopHeartbeat() {
  {
    std::lock_guard<std::mutex> lk(heartbeat_mu_);
    if (!heartbeat_thread_.joinable()) return;
    heartbeat_stop_ = true;
  }
  heartbeat_cv_.notify_all();
  heartbeat_thread_.join();
}

void ResultStore::Replay() {
  TRACE_SPAN(span, "store_replay");
  if (span.active()) span.Detail(path_);
  SPARSIFY_FAILPOINT("store.replay");
  // Records on every exit path (multiple returns, throws on corruption).
  struct ReplayObs {
    Timer timer;
    ~ReplayObs() {
      static obs::Histogram& replay_ns =
          obs::GetHistogram("store.replay_ns");
      replay_ns.Record(static_cast<uint64_t>(timer.Seconds() * 1e9));
    }
  } replay_obs;

  // Base first (it holds the oldest records — compaction folds into it),
  // then every segment in (writer, n) order. Cross-writer ambiguity is
  // harmless: concurrent writers compute bit-identical values for equal
  // keys, and the peer insert rule never lets an error shadow a success.
  ReplayFile(path_, /*own_base=*/options_.read_only || owns_base_,
             /*peer=*/!options_.read_only && !owns_base_);
  for (const auto& [key, seg_path] : ListSegments(dir_)) {
    if (!writer_id_.empty() && key.first == writer_id_) continue;
    ReplayFile(seg_path, /*own_base=*/false, /*peer=*/true);
  }
}

void ResultStore::ReplayFile(const std::string& file, bool own_base,
                             bool peer) {
  std::ifstream in(file, std::ios::binary);
  const bool is_base = file == path_;
  if (!in) {
    if (is_base) file_exists_ = false;
    return;  // missing file = empty store; header written on first Append
  }
  ++replayed_files_;
  if (is_base) file_exists_ = true;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string content = buf.str();

  if (peer || !own_base) {
    // Peer-owned file (a live writer may still be appending): absorb the
    // terminated prefix, leave any partial tail pending for
    // RefreshPeers. Strict about interior corruption — a live writer
    // never produces a terminated-but-garbled line, so one is bit rot.
    PeerFile& state = peers_[file];
    AbsorbPeerLines(file, state, content, /*strict=*/true);
    return;
  }

  if (content.empty()) return;  // empty file: treat like a fresh store
  size_t pos = 0;
  size_t line_no = 0;
  while (pos < content.size()) {
    size_t nl = content.find('\n', pos);
    bool terminated = nl != std::string::npos;
    size_t end = terminated ? nl : content.size();
    std::string line = content.substr(pos, end - pos);
    bool is_tail = !terminated;

    bool ok;
    StoredCell cell;
    StoredClaim claim;
    LineKind kind = LineKind::kBad;
    if (line_no == 0) {
      ok = ParseHeader(line);
      if (!ok && !is_tail) {
        throw StoreCorruptError("result store: " + file +
                                " is not a result-store log (bad header)");
      }
    } else {
      kind = ParseLine(line, &cell, &claim);
      ok = kind != LineKind::kBad;
      if (ok) {
        switch (CheckLineCrc(line)) {
          case CrcStatus::kOk:
          case CrcStatus::kLegacy:  // version-1 record: no checksum to check
            break;
          case CrcStatus::kBad:
            // A parseable line whose checksum fails is bit rot, not a torn
            // append — unless it is the unterminated tail, where a torn
            // checksum field itself is expected and droppable.
            if (!is_tail) {
              throw StoreCorruptError(
                  "result store: checksum mismatch at line " +
                  std::to_string(line_no + 1) + " of " + file);
            }
            ok = false;
        }
      }
      if (!ok && !is_tail) {
        throw StoreCorruptError("result store: corrupt record at line " +
                                std::to_string(line_no + 1) + " of " + file);
      }
      if (ok) {
        if (kind == LineKind::kClaim) {
          claims_.push_back(std::move(claim));
        } else {
          InsertLocked(std::move(cell), /*peer=*/false);
        }
        ++log_records_;
      }
    }
    if (!ok) {
      // Unterminated and unparseable: the torn tail of a crashed append.
      // Everything before it is intact; the tail is cut off before the
      // next append.
      dropped_tail_bytes_ = content.size() - pos;
      ends_with_newline_ = true;
      return;
    }
    valid_bytes_ = terminated ? end + 1 : end;
    ends_with_newline_ = terminated;
    pos = end + (terminated ? 1 : 0);
    ++line_no;
  }
}

size_t ResultStore::AbsorbPeerLines(const std::string& file, PeerFile& state,
                                    const std::string& view, bool strict) {
  static obs::Counter& poisoned_files =
      obs::GetCounter("store.poisoned_peer_files");
  if (state.poisoned) return 0;
  size_t absorbed = 0;
  size_t pos = 0;  // offset into `view`, i.e. file offset - state.consumed
  while (pos < view.size()) {
    const size_t nl = view.find('\n', pos);
    if (nl == std::string::npos) break;  // partial line: peer mid-append
    const std::string line = view.substr(pos, nl - pos);
    if (state.line_no == 0) {
      if (!ParseHeader(line)) {
        throw StoreCorruptError("result store: " + file +
                                " is not a result-store log (bad header)");
      }
    } else {
      StoredCell cell;
      StoredClaim claim;
      const LineKind kind = ParseLine(line, &cell, &claim);
      const bool ok =
          kind != LineKind::kBad && CheckLineCrc(line) != CrcStatus::kBad;
      if (!ok) {
        // At open the whole prefix is settled history: corruption is
        // fatal exactly like in the base file. Mid-run (RefreshPeers)
        // the sweep must survive a peer's bit rot: poison the file —
        // everything already absorbed stays, the rest is ignored and
        // recomputed by this worker if the scheduler needs it.
        if (strict) {
          throw StoreCorruptError("result store: corrupt record at line " +
                                  std::to_string(state.line_no + 1) + " of " +
                                  file);
        }
        state.poisoned = true;
        poisoned_files.Add();
        return absorbed;
      }
      if (kind == LineKind::kClaim) {
        claims_.push_back(std::move(claim));
      } else {
        InsertLocked(std::move(cell), /*peer=*/true);
        ++absorbed;
      }
      ++log_records_;
    }
    ++state.line_no;
    state.consumed += (nl + 1) - pos;
    pos = nl + 1;
  }
  return absorbed;
}

size_t ResultStore::RefreshPeers() {
  static obs::Counter& refreshed =
      obs::GetCounter("store.peer_refresh_records");
  std::lock_guard<std::mutex> lock(mu_);
  size_t absorbed = 0;
  auto refresh_file = [&](const std::string& file) {
    PeerFile& state = peers_[file];
    if (state.poisoned) return;
    std::ifstream in(file, std::ios::binary);
    if (!in) return;
    in.seekg(static_cast<std::streamoff>(state.consumed));
    if (!in) return;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string tail = buf.str();
    if (tail.empty()) return;
    // Mid-run: peer bit rot poisons the file, never throws.
    absorbed += AbsorbPeerLines(file, state, tail, /*strict=*/false);
  };
  if (!owns_base_ && !options_.read_only) refresh_file(path_);
  for (const auto& [key, seg_path] : ListSegments(dir_)) {
    if (!writer_id_.empty() && key.first == writer_id_) continue;
    refresh_file(seg_path);
  }
  refreshed.Add(absorbed);
  return absorbed;
}

bool ResultStore::WriterAlive(const std::string& writer) const {
  if (!writer_id_.empty() && writer == writer_id_) return true;
  for (const lease::LeaseInfo& info : lease::ListLeases(dir_)) {
    if (info.writer != writer) continue;
    std::lock_guard<std::mutex> lock(mu_);
    return prober_.Alive(info);
  }
  return false;  // no lease file: released on clean exit, or reaped
}

size_t ResultStore::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

size_t ResultStore::ErrorCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_cells_;
}

bool ResultStore::Contains(const CellKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.contains(key.Canonical());
}

std::optional<StoredCell> ResultStore::Lookup(const CellKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key.Canonical());
  if (it == index_.end()) return std::nullopt;
  return cells_[it->second];
}

std::vector<StoredCell> ResultStore::Cells() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_;
}

std::vector<StoredClaim> ResultStore::Claims() const {
  std::lock_guard<std::mutex> lock(mu_);
  return claims_;
}

void ResultStore::InsertLocked(StoredCell cell, bool peer) {
  std::string canonical = cell.key.Canonical();
  auto it = index_.find(canonical);
  if (it != index_.end()) {
    StoredCell& slot = cells_[it->second];
    // A peer's error never shadows a completed result: equal keys carry
    // bit-identical values across writers, so any success IS the value;
    // the error just means some other worker's attempt failed.
    if (peer && cell.is_error && !slot.is_error) return;
    if (slot.is_error && !cell.is_error) --error_cells_;
    if (!slot.is_error && cell.is_error) ++error_cells_;
    slot = std::move(cell);  // last write wins, keeps position
  } else {
    if (cell.is_error) ++error_cells_;
    index_.emplace(std::move(canonical), cells_.size());
    cells_.push_back(std::move(cell));
  }
}

std::string ResultStore::SegmentPath(uint64_t n) const {
  return (fs::path(dir_) /
          ("log." + writer_id_ + "." + std::to_string(n) + ".jsonl"))
      .string();
}

void ResultStore::EnsureWritable() {
  if (options_.read_only) {
    throw IoError("result store: " + path_ +
                  " was opened read-only (snapshot)");
  }
  if (out_.is_open()) return;
  if (append_path_.empty()) {
    if (owns_base_) {
      append_path_ = path_;
      if (file_exists_ && dropped_tail_bytes_ > 0) {
        // Cut the torn tail so the file returns to whole-line form.
        std::filesystem::resize_file(path_, valid_bytes_);
        dropped_tail_bytes_ = 0;
      }
      out_.open(append_path_, std::ios::binary | std::ios::app);
      if (!out_) {
        throw IoError("result store: cannot open " + append_path_ +
                      " for append");
      }
      if (!file_exists_ || valid_bytes_ == 0) {
        const std::string header = SerializeHeader(kFormatVersion);
        out_ << header;
        append_path_bytes_ = header.size();
      } else {
        if (!ends_with_newline_) {
          // Valid final record that lost only its newline in a crash.
          out_ << '\n';
        }
        append_path_bytes_ = valid_bytes_ + (ends_with_newline_ ? 0 : 1);
      }
      ends_with_newline_ = true;
      file_exists_ = true;
    } else {
      // Not the base owner: this writer's records live in its own
      // segment chain, so concurrent processes never share an append fd.
      append_path_ = SegmentPath(next_segment_++);
      out_.open(append_path_, std::ios::binary | std::ios::trunc);
      if (!out_) {
        throw IoError("result store: cannot open " + append_path_ +
                      " for append");
      }
      const std::string header = SerializeHeader(kFormatVersion);
      out_ << header;
      append_path_bytes_ = header.size();
    }
  } else {
    out_.open(append_path_, std::ios::binary | std::ios::app);
    if (!out_) {
      throw IoError("result store: cannot open " + append_path_ +
                    " for append");
    }
  }
#ifdef SPARSIFY_STORE_HAS_POSIX
  if (sync_fd_ < 0) {
    // ofstream gives no access to its descriptor, and fsync needs one;
    // a second descriptor on the same file syncs the same data.
    sync_fd_ = ::open(append_path_.c_str(), O_WRONLY | O_CLOEXEC);
    if (sync_fd_ < 0 && fsync_policy_ != FsyncPolicy::kNone) {
      throw IoError("result store: cannot open " + append_path_ +
                    " for fsync");
    }
  }
#endif
}

void ResultStore::RotateLocked() {
  static obs::Counter& rotations =
      obs::GetCounter("store.segment_rotations");
  SPARSIFY_FAILPOINT("store.rotate");
  CloseWriterLocked();
  append_path_ = SegmentPath(next_segment_++);
  out_.open(append_path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw IoError("result store: cannot open " + append_path_ +
                  " for append");
  }
  const std::string header = SerializeHeader(kFormatVersion);
  out_ << header;
  append_path_bytes_ = header.size();
#ifdef SPARSIFY_STORE_HAS_POSIX
  sync_fd_ = ::open(append_path_.c_str(), O_WRONLY | O_CLOEXEC);
  if (sync_fd_ < 0 && fsync_policy_ != FsyncPolicy::kNone) {
    throw IoError("result store: cannot open " + append_path_ +
                  " for fsync");
  }
#endif
  rotations.Add();
}

void ResultStore::SyncLocked(bool closing) {
  if (fsync_policy_ == FsyncPolicy::kNone) {
    appends_since_sync_ = 0;
    return;
  }
  const uint64_t interval =
      fsync_policy_ == FsyncPolicy::kAlways ? 1 : kFsyncBatchInterval;
  if (!closing && appends_since_sync_ < interval) return;
  if (appends_since_sync_ == 0) return;
  SPARSIFY_FAILPOINT("store.fsync");
#ifdef SPARSIFY_STORE_HAS_POSIX
  if (sync_fd_ >= 0 && ::fsync(sync_fd_) != 0) {
    throw IoError("result store: fsync failed on " + append_path_);
  }
#endif
  appends_since_sync_ = 0;
}

void ResultStore::CloseWriterLocked() {
  if (out_.is_open()) {
    out_.flush();
    if (!out_) {
      throw IoError("result store: write failure on " + append_path_);
    }
    SyncLocked(/*closing=*/true);
    out_.close();
  }
#ifdef SPARSIFY_STORE_HAS_POSIX
  if (sync_fd_ >= 0) {
    ::close(sync_fd_);
    sync_fd_ = -1;
  }
#endif
}

void ResultStore::AppendRecordLocked(const std::string& line) {
  EnsureWritable();
  SPARSIFY_FAILPOINT("store.append");
  out_ << line;
  out_.flush();
  if (!out_) {
    throw IoError("result store: write failure on " + append_path_);
  }
  ++log_records_;
  ++appends_since_sync_;
  SyncLocked(/*closing=*/false);
  append_path_bytes_ += line.size();
  if (append_path_bytes_ >= options_.segment_bytes) {
    RotateLocked();
  }
}

void ResultStore::AppendLocked(StoredCell cell) {
  AppendRecordLocked(SerializeRecord(cell));
  InsertLocked(std::move(cell), /*peer=*/false);
}

void ResultStore::Append(const CellKey& key, double achieved_prune_rate,
                         double value) {
  // Append latency includes the lock wait: contention from many workers
  // appending at once shows up here, which is what the histogram is for.
  static obs::Counter& appends = obs::GetCounter("store.appends");
  static obs::Histogram& append_ns = obs::GetHistogram("store.append_ns");
  Timer append_timer;
  std::lock_guard<std::mutex> lock(mu_);
  StoredCell cell;
  cell.key = key;
  cell.achieved_prune_rate = achieved_prune_rate;
  cell.value = value;
  AppendLocked(std::move(cell));
  appends.Add();
  append_ns.Record(static_cast<uint64_t>(append_timer.Seconds() * 1e9));
}

void ResultStore::AppendError(const CellKey& key,
                              const std::string& error_class,
                              const std::string& error_message,
                              int attempts) {
  static obs::Counter& errors = obs::GetCounter("store.error_appends");
  std::lock_guard<std::mutex> lock(mu_);
  StoredCell cell;
  cell.key = key;
  cell.is_error = true;
  cell.error_class = error_class;
  cell.error_message = error_message;
  cell.attempts = attempts;
  AppendLocked(std::move(cell));
  errors.Add();
}

void ResultStore::AppendClaim(const std::string& scope, uint64_t chunk) {
  static obs::Counter& claims = obs::GetCounter("store.claim_appends");
  std::lock_guard<std::mutex> lock(mu_);
  StoredClaim claim;
  claim.writer = writer_id_;
  claim.scope = scope;
  claim.chunk = chunk;
  AppendRecordLocked(SerializeClaim(claim));
  claims_.push_back(std::move(claim));
  claims.Add();
}

void ResultStore::RewriteLogLocked(const std::vector<StoredCell>& cells,
                                   const std::string& tmp,
                                   const char* fp_write,
                                   const char* fp_rename) {
  // Write the replacement log beside the original, then rename over it.
  // A crash before the rename leaves the old log plus an orphan temp
  // (cleaned on next open, under the lease-dir flock); a crash after
  // the rename but before the segment unlinks replays to the same
  // contents (the folded records shadow the segments). Either way the
  // store opens clean.
  SPARSIFY_FAILPOINT(fp_write);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw IoError("result store: cannot open " + tmp + " for rewrite");
    }
    out << SerializeHeader(kFormatVersion);  // upgrades version-1 logs
    for (const StoredCell& cell : cells) {
      out << SerializeRecord(cell);
    }
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw IoError("result store: write failure on " + tmp);
    }
  }
#ifdef SPARSIFY_STORE_HAS_POSIX
  if (fsync_policy_ != FsyncPolicy::kNone) {
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CLOEXEC);
    if (fd < 0 || ::fsync(fd) != 0) {
      if (fd >= 0) ::close(fd);
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw IoError("result store: fsync failed on " + tmp);
    }
    ::close(fd);
  }
#endif
  SPARSIFY_FAILPOINT(fp_rename);
  std::filesystem::rename(tmp, path_);
  // The folded segments are garbage now; every writer is dead (sole-
  // writer precondition) except us, and ours were folded too.
  for (const auto& [key, seg_path] : ListSegments(dir_)) {
    std::error_code ec;
    fs::remove(seg_path, ec);
  }

  {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path_, ec);
    valid_bytes_ = ec ? 0 : static_cast<size_t>(size);
  }
  dropped_tail_bytes_ = 0;
  ends_with_newline_ = true;
  file_exists_ = true;
  log_records_ = cells.size();
  claims_.clear();
  peers_.clear();
  append_path_.clear();
  append_path_bytes_ = 0;
  // Sole writer: the rewritten base is ours now, whoever owned it before.
  // If ownership actually changed hands, publish it in the lease
  // immediately (still under the caller's lease-dir flock) — a window
  // where the base looks unowned would let a fresh acquirer claim it and
  // interleave appends with ours.
  if (!owns_base_.exchange(true)) {
    std::lock_guard<std::mutex> hb(heartbeat_mu_);
    lease::LeaseInfo info;
    info.writer = writer_id_;
    info.pid = OwnPid();
    info.heartbeat = heartbeat_;
    info.ttl_seconds = options_.lease_ttl_seconds;
    info.owns_base = true;
    try {
      lease::WriteLease(dir_, info);
    } catch (...) {
      // Renewal recreates it within ttl/4; until then no acquirer can
      // run anyway — the caller still holds the lease-dir flock.
    }
  }
}

CompactStats ResultStore::Compact() {
  TRACE_SPAN(span, "store_compact");
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.read_only) {
    throw IoError("result store: " + path_ +
                  " was opened read-only (snapshot)");
  }
  CompactStats stats;
  stats.records_before = log_records_;
  stats.records_after = cells_.size();
  {
    std::error_code ec;
    if (file_exists_) {
      const auto size = std::filesystem::file_size(path_, ec);
      if (!ec) stats.bytes_before = size;
    }
    for (const auto& [key, seg_path] : ListSegments(dir_)) {
      const auto size = std::filesystem::file_size(seg_path, ec);
      if (!ec) stats.bytes_before += size;
    }
  }

  // The whole commit happens under the lease-dir flock: acquisition of a
  // new writer serializes against the sole-writer check AND the rewrite,
  // so a worker can neither slip in mid-rewrite nor replay a half-
  // committed view.
  lease::LeaseDirLock dir_lock(dir_);
  RequireSoleWriter("compact");
  CloseWriterLocked();
  RewriteLogLocked(cells_,
                   path_ + ".compact.tmp." + std::to_string(OwnPid()),
                   "store.compact.write", "store.compact.rename");

  {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path_, ec);
    if (!ec) stats.bytes_after = size;
  }

  static obs::Counter& compactions = obs::GetCounter("store.compactions");
  compactions.Add();
  return stats;
}

void ResultStore::ReplaceWithMerged(std::vector<StoredCell> cells) {
  TRACE_SPAN(span, "store_merge_commit");
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.read_only) {
    throw IoError("result store: " + path_ +
                  " was opened read-only (snapshot)");
  }
  lease::LeaseDirLock dir_lock(dir_);
  RequireSoleWriter("merge");
  CloseWriterLocked();

  // Swap in the merged view first so the rewrite and the in-memory index
  // can never disagree.
  cells_ = std::move(cells);
  index_.clear();
  error_cells_ = 0;
  for (size_t i = 0; i < cells_.size(); ++i) {
    index_.emplace(cells_[i].key.Canonical(), i);
    if (cells_[i].is_error) ++error_cells_;
  }
  RewriteLogLocked(cells_, path_ + ".merge.tmp." + std::to_string(OwnPid()),
                   "store.merge.write", "store.merge.rename");

  static obs::Counter& merges = obs::GetCounter("store.merge_commits");
  merges.Add();
}

void ResultStore::SetFsyncPolicy(FsyncPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  fsync_policy_ = policy;
}

FsyncPolicy ResultStore::fsync_policy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fsync_policy_;
}

}  // namespace sparsify
