#include "src/store/result_store.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <sstream>
#include <stdexcept>

#include "src/obs/counters.h"
#include "src/obs/trace.h"
#include "src/util/crc32c.h"
#include "src/util/errors.h"
#include "src/util/failpoint.h"
#include "src/util/timer.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define SPARSIFY_STORE_HAS_FLOCK 1
#endif

namespace sparsify {

namespace {

// ---------------------------------------------------------------------------
// Minimal flat-JSON line codec. The store both writes and reads every line,
// so only the subset it emits must round-trip: one object per line, string
// keys, values that are strings or numbers. Doubles use %.17g, which
// round-trips every finite IEEE double (nan/inf are emitted bare and
// accepted back).
// ---------------------------------------------------------------------------

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

struct Field {
  bool is_string = false;
  std::string text;  // unescaped string, or the raw number token
};

using FieldMap = std::map<std::string, Field>;

// Parses one flat JSON object. Returns false on any syntax error (the
// caller decides whether that is a droppable tail or fatal corruption).
bool ParseFlatObject(const std::string& line, FieldMap* out) {
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  auto parse_string = [&](std::string* s) -> bool {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    while (i < line.size()) {
      char c = line[i];
      if (c == '"') {
        ++i;
        return true;
      }
      if (c == '\\') {
        if (i + 1 >= line.size()) return false;
        char esc = line[i + 1];
        i += 2;
        switch (esc) {
          case '"': s->push_back('"'); break;
          case '\\': s->push_back('\\'); break;
          case '/': s->push_back('/'); break;
          case 'n': s->push_back('\n'); break;
          case 't': s->push_back('\t'); break;
          case 'r': s->push_back('\r'); break;
          case 'b': s->push_back('\b'); break;
          case 'f': s->push_back('\f'); break;
          case 'u': {
            if (i + 4 > line.size()) return false;
            char* end = nullptr;
            std::string hex = line.substr(i, 4);
            long code = std::strtol(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4 || code > 0xff) return false;
            s->push_back(static_cast<char>(code));
            i += 4;
            break;
          }
          default:
            return false;
        }
      } else {
        s->push_back(c);
        ++i;
      }
    }
    return false;  // unterminated string
  };

  skip_ws();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (i >= line.size() || line[i] != ':') return false;
      ++i;
      skip_ws();
      Field field;
      if (i < line.size() && line[i] == '"') {
        field.is_string = true;
        if (!parse_string(&field.text)) return false;
      } else {
        // Number (or nan/inf/true/false/null): take the bare token.
        size_t start = i;
        while (i < line.size() && line[i] != ',' && line[i] != '}' &&
               line[i] != ' ' && line[i] != '\t') {
          ++i;
        }
        field.text = line.substr(start, i - start);
        if (field.text.empty()) return false;
      }
      (*out)[key] = std::move(field);
      skip_ws();
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      return false;
    }
  }
  skip_ws();
  return i == line.size();  // trailing garbage is a parse failure
}

bool GetString(const FieldMap& f, const std::string& key, std::string* out) {
  auto it = f.find(key);
  if (it == f.end() || !it->second.is_string) return false;
  *out = it->second.text;
  return true;
}

bool GetDouble(const FieldMap& f, const std::string& key, double* out) {
  auto it = f.find(key);
  if (it == f.end() || it->second.is_string) return false;
  char* end = nullptr;
  *out = std::strtod(it->second.text.c_str(), &end);
  return end == it->second.text.c_str() + it->second.text.size();
}

bool GetUint64(const FieldMap& f, const std::string& key, uint64_t* out) {
  auto it = f.find(key);
  if (it == f.end() || it->second.is_string) return false;
  char* end = nullptr;
  *out = std::strtoull(it->second.text.c_str(), &end, 10);
  return end == it->second.text.c_str() + it->second.text.size();
}

bool GetInt(const FieldMap& f, const std::string& key, int* out) {
  auto it = f.find(key);
  if (it == f.end() || it->second.is_string) return false;
  char* end = nullptr;
  long v = std::strtol(it->second.text.c_str(), &end, 10);
  if (end != it->second.text.c_str() + it->second.text.size()) return false;
  *out = static_cast<int>(v);
  return true;
}

constexpr char kFormatName[] = "sparsify-result-store";

// The record-final checksum field. The CRC covers the serialized record
// WITHOUT this suffix (i.e. the bytes up to the suffix, plus the closing
// brace), so writer and reader agree without re-serializing.
constexpr char kCrcSuffix[] = ",\"crc32c\":\"";
constexpr size_t kCrcSuffixLen = sizeof(kCrcSuffix) - 1;
constexpr size_t kCrcHexLen = 8;

std::string SerializeHeader(int version) {
  std::string line = "{\"format\":\"";
  line += kFormatName;
  line += "\",\"version\":" + std::to_string(version) + "}\n";
  return line;
}

// Takes a serialized record "{...}" (no newline), returns it with the
// checksum spliced in before the closing brace and a trailing newline:
// {...,"crc32c":"xxxxxxxx"}\n
std::string WithCrc(std::string record) {
  const uint32_t crc = Crc32c(record);
  char hex[kCrcHexLen + 1];
  std::snprintf(hex, sizeof(hex), "%08x", crc);
  record.pop_back();  // the '}' the CRC nonetheless covers
  record += kCrcSuffix;
  record += hex;
  record += "\"}\n";
  return record;
}

enum class CrcStatus {
  kOk,      // checksum present and correct
  kLegacy,  // no checksum field (version-1 record): accepted
  kBad,     // checksum present but wrong, or malformed
};

CrcStatus CheckLineCrc(const std::string& line) {
  const size_t p = line.rfind(kCrcSuffix);
  if (p == std::string::npos) return CrcStatus::kLegacy;
  // The suffix must be exactly the final field: ,"crc32c":"XXXXXXXX"}
  if (p + kCrcSuffixLen + kCrcHexLen + 2 != line.size() ||
      line.compare(line.size() - 2, 2, "\"}") != 0) {
    return CrcStatus::kBad;
  }
  uint32_t want = 0;
  for (size_t i = 0; i < kCrcHexLen; ++i) {
    const char c = line[p + kCrcSuffixLen + i];
    uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint32_t>(c - 'a' + 10);
    } else {
      return CrcStatus::kBad;  // writer emits lowercase hex only
    }
    want = (want << 4) | digit;
  }
  // Covered bytes: everything before the suffix, re-closed.
  std::string covered = line.substr(0, p);
  covered += '}';
  return Crc32c(covered) == want ? CrcStatus::kOk : CrcStatus::kBad;
}

// Record body without checksum or newline; WithCrc finishes the line.
std::string SerializeRecordBody(const StoredCell& cell) {
  std::string line = "{\"dataset\":";
  AppendEscaped(&line, cell.key.dataset);
  line += ",\"sparsifier\":";
  AppendEscaped(&line, cell.key.sparsifier);
  line += ",\"prune_rate\":" + FormatDouble(cell.key.prune_rate);
  line += ",\"run\":" + std::to_string(cell.key.run);
  line += ",\"grid_index\":" + std::to_string(cell.key.grid_index);
  line += ",\"master_seed\":" + std::to_string(cell.key.master_seed);
  line += ",\"metric\":";
  AppendEscaped(&line, cell.key.metric);
  line += ",\"code_rev\":";
  AppendEscaped(&line, cell.key.code_rev);
  if (cell.is_error) {
    line += ",\"kind\":\"error\",\"error_class\":";
    AppendEscaped(&line, cell.error_class);
    line += ",\"error\":";
    AppendEscaped(&line, cell.error_message);
    line += ",\"attempts\":" + std::to_string(cell.attempts);
  } else {
    line +=
        ",\"achieved_prune_rate\":" + FormatDouble(cell.achieved_prune_rate);
    line += ",\"value\":" + FormatDouble(cell.value);
  }
  line += "}";
  return line;
}

std::string SerializeRecord(const StoredCell& cell) {
  return WithCrc(SerializeRecordBody(cell));
}

bool ParseRecord(const std::string& line, StoredCell* cell) {
  FieldMap fields;
  if (!ParseFlatObject(line, &fields)) return false;
  if (!GetString(fields, "dataset", &cell->key.dataset) ||
      !GetString(fields, "sparsifier", &cell->key.sparsifier) ||
      !GetDouble(fields, "prune_rate", &cell->key.prune_rate) ||
      !GetInt(fields, "run", &cell->key.run) ||
      !GetUint64(fields, "grid_index", &cell->key.grid_index) ||
      !GetUint64(fields, "master_seed", &cell->key.master_seed) ||
      !GetString(fields, "metric", &cell->key.metric) ||
      !GetString(fields, "code_rev", &cell->key.code_rev)) {
    return false;
  }
  std::string kind;
  if (GetString(fields, "kind", &kind)) {
    if (kind != "error") return false;  // only other kind the store writes
    cell->is_error = true;
    if (!GetString(fields, "error_class", &cell->error_class) ||
        !GetString(fields, "error", &cell->error_message)) {
      return false;
    }
    GetInt(fields, "attempts", &cell->attempts);  // optional
    return true;
  }
  cell->is_error = false;
  return GetDouble(fields, "achieved_prune_rate",
                   &cell->achieved_prune_rate) &&
         GetDouble(fields, "value", &cell->value);
}

bool ParseHeader(const std::string& line) {
  FieldMap fields;
  if (!ParseFlatObject(line, &fields)) return false;
  std::string format;
  int version = 0;
  if (!GetString(fields, "format", &format) ||
      !GetInt(fields, "version", &version)) {
    return false;
  }
  if (format != kFormatName) return false;
  // Version 1 (no record CRCs) is read- and append-compatible; anything
  // newer than this binary writes is not.
  if (version < 1 || version > ResultStore::kFormatVersion) {
    throw StoreCorruptError("result store: unsupported version " +
                            std::to_string(version));
  }
  return true;
}

FsyncPolicy FsyncPolicyFromEnv(FsyncPolicy fallback) {
  const char* env = std::getenv("SPARSIFY_STORE_FSYNC");
  if (env == nullptr || *env == '\0') return fallback;
  const std::string v = env;
  if (v == "none") return FsyncPolicy::kNone;
  if (v == "batch") return FsyncPolicy::kBatch;
  if (v == "always") return FsyncPolicy::kAlways;
  throw std::invalid_argument(
      "SPARSIFY_STORE_FSYNC: expected none|batch|always, got '" + v + "'");
}

// Appends between fsyncs under FsyncPolicy::kBatch. Small enough that a
// power loss costs at most one batch of ~200-byte records, large enough
// that fsync latency amortizes out of the append path.
constexpr uint64_t kFsyncBatchInterval = 32;

}  // namespace

std::string CellKey::Canonical() const {
  // '\x1f' (unit separator) cannot appear in the names the framework uses,
  // so joined fields never collide.
  std::string s;
  s.reserve(dataset.size() + sparsifier.size() + metric.size() +
            code_rev.size() + 48);
  s += dataset;
  s.push_back('\x1f');
  s += sparsifier;
  s.push_back('\x1f');
  s += FormatDouble(prune_rate);
  s.push_back('\x1f');
  s += std::to_string(run);
  s.push_back('\x1f');
  s += std::to_string(grid_index);
  s.push_back('\x1f');
  s += std::to_string(master_seed);
  s.push_back('\x1f');
  s += metric;
  s.push_back('\x1f');
  s += code_rev;
  return s;
}

ResultStore::ResultStore(std::string path) : path_(std::move(path)) {
  fsync_policy_ = FsyncPolicyFromEnv(FsyncPolicy::kBatch);
  SPARSIFY_FAILPOINT("store.lock");
#ifdef SPARSIFY_STORE_HAS_FLOCK
  // Exclusive inter-process lock, taken before Replay so a concurrent
  // writer can neither corrupt what we read nor interleave later appends.
  // flock conflicts between two descriptors even within one process, so
  // double-opening a store in tests (or one binary) fails the same way.
  // The lock lives on a sidecar `.lock` file: locking the log itself
  // would pin an inode that tail repair (resize_file) may replace.
  const std::string lock_path = path_ + ".lock";
  lock_fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (lock_fd_ < 0) {
    throw IoError("result store: cannot open lock file " + lock_path);
  }
  if (::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    ::close(lock_fd_);
    lock_fd_ = -1;
    throw StoreLockHeldError("result store: " + path_ +
                             " is locked by another process");
  }
#endif
  try {
    // Holding the exclusive lock, any leftover compaction temp file is an
    // orphan from a crashed Compact(): the rename never happened, the log
    // itself is intact, the temp is garbage.
    {
      const std::filesystem::path p(path_);
      const std::string tmp_prefix =
          p.filename().string() + ".compact.tmp";
      std::error_code ec;
      for (const auto& entry : std::filesystem::directory_iterator(
               p.has_parent_path() ? p.parent_path()
                                   : std::filesystem::path("."),
               ec)) {
        if (entry.path().filename().string().rfind(tmp_prefix, 0) == 0) {
          std::filesystem::remove(entry.path(), ec);
        }
      }
    }
    Replay();
  } catch (...) {
    // The destructor never runs when the constructor throws: release the
    // lock here or a failed open would wedge the path for the process.
#ifdef SPARSIFY_STORE_HAS_FLOCK
    if (lock_fd_ >= 0) {
      ::flock(lock_fd_, LOCK_UN);
      ::close(lock_fd_);
      lock_fd_ = -1;
    }
#endif
    throw;
  }
}

ResultStore::~ResultStore() {
  // Best-effort final flush/sync: the destructor must not throw, but a
  // clean close should leave nothing in the page cache under kBatch.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (out_.is_open()) out_.flush();
#ifdef SPARSIFY_STORE_HAS_FLOCK
    if (sync_fd_ >= 0) {
      if (fsync_policy_ != FsyncPolicy::kNone && appends_since_sync_ > 0) {
        ::fsync(sync_fd_);
      }
      ::close(sync_fd_);
      sync_fd_ = -1;
    }
#endif
  }
#ifdef SPARSIFY_STORE_HAS_FLOCK
  if (lock_fd_ >= 0) {
    ::flock(lock_fd_, LOCK_UN);
    ::close(lock_fd_);
  }
#endif
}

std::string ResultStore::PathInDir(const std::string& dir) {
  std::filesystem::create_directories(dir);
  return (std::filesystem::path(dir) / DefaultFileName()).string();
}

ResultStore ResultStore::OpenInDir(const std::string& dir) {
  return ResultStore(PathInDir(dir));
}

void ResultStore::Replay() {
  TRACE_SPAN(span, "store_replay");
  if (span.active()) span.Detail(path_);
  SPARSIFY_FAILPOINT("store.replay");
  // Records on every exit path (multiple returns, throws on corruption).
  struct ReplayObs {
    Timer timer;
    ~ReplayObs() {
      static obs::Histogram& replay_ns =
          obs::GetHistogram("store.replay_ns");
      replay_ns.Record(static_cast<uint64_t>(timer.Seconds() * 1e9));
    }
  } replay_obs;

  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    file_exists_ = false;
    return;  // missing file = empty store; header written on first Append
  }
  file_exists_ = true;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string content = buf.str();
  if (content.empty()) return;  // empty file: treat like a fresh store

  size_t pos = 0;
  size_t line_no = 0;
  while (pos < content.size()) {
    size_t nl = content.find('\n', pos);
    bool terminated = nl != std::string::npos;
    size_t end = terminated ? nl : content.size();
    std::string line = content.substr(pos, end - pos);
    bool is_tail = !terminated;

    bool ok;
    StoredCell cell;
    if (line_no == 0) {
      ok = ParseHeader(line);
      if (!ok && !is_tail) {
        throw StoreCorruptError("result store: " + path_ +
                                " is not a result-store log (bad header)");
      }
    } else {
      ok = ParseRecord(line, &cell);
      if (ok) {
        switch (CheckLineCrc(line)) {
          case CrcStatus::kOk:
          case CrcStatus::kLegacy:  // version-1 record: no checksum to check
            break;
          case CrcStatus::kBad:
            // A parseable line whose checksum fails is bit rot, not a torn
            // append — unless it is the unterminated tail, where a torn
            // checksum field itself is expected and droppable.
            if (!is_tail) {
              throw StoreCorruptError(
                  "result store: checksum mismatch at line " +
                  std::to_string(line_no + 1) + " of " + path_);
            }
            ok = false;
        }
      }
      if (!ok && !is_tail) {
        throw StoreCorruptError("result store: corrupt record at line " +
                                std::to_string(line_no + 1) + " of " + path_);
      }
      if (ok) {
        InsertLocked(std::move(cell));
        ++log_records_;
      }
    }
    if (!ok) {
      // Unterminated and unparseable: the torn tail of a crashed append.
      // Everything before it is intact; the tail is cut off before the
      // next append.
      dropped_tail_bytes_ = content.size() - pos;
      ends_with_newline_ = true;
      return;
    }
    valid_bytes_ = terminated ? end + 1 : end;
    ends_with_newline_ = terminated;
    pos = end + (terminated ? 1 : 0);
    ++line_no;
  }
}

size_t ResultStore::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

size_t ResultStore::ErrorCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_cells_;
}

bool ResultStore::Contains(const CellKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.contains(key.Canonical());
}

std::optional<StoredCell> ResultStore::Lookup(const CellKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key.Canonical());
  if (it == index_.end()) return std::nullopt;
  return cells_[it->second];
}

std::vector<StoredCell> ResultStore::Cells() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_;
}

void ResultStore::InsertLocked(StoredCell cell) {
  std::string canonical = cell.key.Canonical();
  auto it = index_.find(canonical);
  if (it != index_.end()) {
    StoredCell& slot = cells_[it->second];
    if (slot.is_error && !cell.is_error) --error_cells_;
    if (!slot.is_error && cell.is_error) ++error_cells_;
    slot = std::move(cell);  // last write wins, keeps position
  } else {
    if (cell.is_error) ++error_cells_;
    index_.emplace(std::move(canonical), cells_.size());
    cells_.push_back(std::move(cell));
  }
}

void ResultStore::EnsureWritable() {
  if (out_.is_open()) return;
  if (file_exists_ && dropped_tail_bytes_ > 0) {
    // Cut the torn tail so the file returns to whole-line form.
    std::filesystem::resize_file(path_, valid_bytes_);
    dropped_tail_bytes_ = 0;
  }
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) {
    throw IoError("result store: cannot open " + path_ + " for append");
  }
  if (!file_exists_ || valid_bytes_ == 0) {
    out_ << SerializeHeader(kFormatVersion);
  } else if (!ends_with_newline_) {
    // Valid final record that lost only its newline in a crash.
    out_ << '\n';
  }
  ends_with_newline_ = true;
  file_exists_ = true;
#ifdef SPARSIFY_STORE_HAS_FLOCK
  if (sync_fd_ < 0) {
    // ofstream gives no access to its descriptor, and fsync needs one;
    // a second descriptor on the same file syncs the same data.
    sync_fd_ = ::open(path_.c_str(), O_WRONLY | O_CLOEXEC);
    if (sync_fd_ < 0 && fsync_policy_ != FsyncPolicy::kNone) {
      throw IoError("result store: cannot open " + path_ + " for fsync");
    }
  }
#endif
}

void ResultStore::SyncLocked(bool closing) {
  if (fsync_policy_ == FsyncPolicy::kNone) {
    appends_since_sync_ = 0;
    return;
  }
  const uint64_t interval =
      fsync_policy_ == FsyncPolicy::kAlways ? 1 : kFsyncBatchInterval;
  if (!closing && appends_since_sync_ < interval) return;
  if (appends_since_sync_ == 0) return;
  SPARSIFY_FAILPOINT("store.fsync");
#ifdef SPARSIFY_STORE_HAS_FLOCK
  if (sync_fd_ >= 0 && ::fsync(sync_fd_) != 0) {
    throw IoError("result store: fsync failed on " + path_);
  }
#endif
  appends_since_sync_ = 0;
}

void ResultStore::CloseWriterLocked() {
  if (out_.is_open()) {
    out_.flush();
    if (!out_) throw IoError("result store: write failure on " + path_);
    SyncLocked(/*closing=*/true);
    out_.close();
  }
#ifdef SPARSIFY_STORE_HAS_FLOCK
  if (sync_fd_ >= 0) {
    ::close(sync_fd_);
    sync_fd_ = -1;
  }
#endif
}

void ResultStore::AppendLocked(StoredCell cell) {
  EnsureWritable();
  SPARSIFY_FAILPOINT("store.append");
  out_ << SerializeRecord(cell);
  out_.flush();
  if (!out_) {
    throw IoError("result store: write failure on " + path_);
  }
  ++log_records_;
  ++appends_since_sync_;
  SyncLocked(/*closing=*/false);
  InsertLocked(std::move(cell));
}

void ResultStore::Append(const CellKey& key, double achieved_prune_rate,
                         double value) {
  // Append latency includes the lock wait: contention from many workers
  // appending at once shows up here, which is what the histogram is for.
  static obs::Counter& appends = obs::GetCounter("store.appends");
  static obs::Histogram& append_ns = obs::GetHistogram("store.append_ns");
  Timer append_timer;
  std::lock_guard<std::mutex> lock(mu_);
  StoredCell cell;
  cell.key = key;
  cell.achieved_prune_rate = achieved_prune_rate;
  cell.value = value;
  AppendLocked(std::move(cell));
  appends.Add();
  append_ns.Record(static_cast<uint64_t>(append_timer.Seconds() * 1e9));
}

void ResultStore::AppendError(const CellKey& key,
                              const std::string& error_class,
                              const std::string& error_message,
                              int attempts) {
  static obs::Counter& errors = obs::GetCounter("store.error_appends");
  std::lock_guard<std::mutex> lock(mu_);
  StoredCell cell;
  cell.key = key;
  cell.is_error = true;
  cell.error_class = error_class;
  cell.error_message = error_message;
  cell.attempts = attempts;
  AppendLocked(std::move(cell));
  errors.Add();
}

CompactStats ResultStore::Compact() {
  TRACE_SPAN(span, "store_compact");
  std::lock_guard<std::mutex> lock(mu_);
  CompactStats stats;
  stats.records_before = log_records_;
  stats.records_after = cells_.size();
  if (file_exists_) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path_, ec);
    if (!ec) stats.bytes_before = size;
  }

  CloseWriterLocked();

  // Write the replacement log beside the original, then rename over it.
  // A crash before the rename leaves the old log plus an orphan temp
  // (cleaned on next open, under the lock); a crash after leaves the new
  // log. Either way the store opens clean.
#ifdef SPARSIFY_STORE_HAS_FLOCK
  const std::string tmp =
      path_ + ".compact.tmp." + std::to_string(::getpid());
#else
  const std::string tmp = path_ + ".compact.tmp";
#endif
  SPARSIFY_FAILPOINT("store.compact.write");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw IoError("result store: cannot open " + tmp + " for compaction");
    }
    out << SerializeHeader(kFormatVersion);  // upgrades version-1 logs
    for (const StoredCell& cell : cells_) {
      out << SerializeRecord(cell);
    }
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw IoError("result store: write failure on " + tmp);
    }
  }
#ifdef SPARSIFY_STORE_HAS_FLOCK
  if (fsync_policy_ != FsyncPolicy::kNone) {
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CLOEXEC);
    if (fd < 0 || ::fsync(fd) != 0) {
      if (fd >= 0) ::close(fd);
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw IoError("result store: fsync failed on " + tmp);
    }
    ::close(fd);
  }
#endif
  SPARSIFY_FAILPOINT("store.compact.rename");
  std::filesystem::rename(tmp, path_);

  {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path_, ec);
    if (!ec) {
      stats.bytes_after = size;
      valid_bytes_ = static_cast<size_t>(size);
    }
  }
  dropped_tail_bytes_ = 0;
  ends_with_newline_ = true;
  file_exists_ = true;
  log_records_ = cells_.size();

  static obs::Counter& compactions = obs::GetCounter("store.compactions");
  compactions.Add();
  return stats;
}

void ResultStore::SetFsyncPolicy(FsyncPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  fsync_policy_ = policy;
}

FsyncPolicy ResultStore::fsync_policy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fsync_policy_;
}

}  // namespace sparsify
